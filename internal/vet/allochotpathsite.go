package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/vet/cfg"
)

// Site discovery and classification. A structural prescan registers
// every candidate allocation in a hot function (with its lexical
// context: loop depth, bail-out blocks, idiom exemptions); a taint run
// then tracks the escape-dependent ones through the function — and
// through callee escape summaries — marking heap the sites that leave
// the frame.

// siteScan is the per-function structural prescan state.
type siteScan struct {
	an      *allocAnalysis
	pkg     *Package
	fn      *types.Func
	parents map[ast.Node]ast.Node
	byNode  map[ast.Node]*allocSite

	appendCalls []*ast.CallExpr
	makePairs   []makePair
	copyObjs    []types.Object
}

type makePair struct {
	obj  types.Object
	call *ast.CallExpr
}

// buildParents records each node's parent for lexical-context queries.
func buildParents(decl *ast.FuncDecl) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// loopDepth counts the for/range statements whose body encloses n,
// stopping at function-literal boundaries: a closure body is a fresh
// frame, so its defers run (and pop) per invocation rather than
// accumulating in the loop's frame, and its per-iteration cost is
// already charged to the closure site itself.
func (sc *siteScan) loopDepth(n ast.Node) int {
	depth := 0
	for p := sc.parents[n]; p != nil; p = sc.parents[p] {
		var body *ast.BlockStmt
		switch x := p.(type) {
		case *ast.FuncLit:
			return depth
		case *ast.ForStmt:
			body = x.Body
		case *ast.RangeStmt:
			body = x.Body
		default:
			continue
		}
		if body != nil && body.Pos() <= n.Pos() && n.Pos() < body.End() {
			depth++
		}
	}
	return depth
}

// bails reports whether n sits on a path that immediately leaves the
// function: inside a return statement, or in a block whose last
// statement is a return. Such error-handling blocks are not steady
// state and are exempt from the per-iteration loop rules.
func (sc *siteScan) bails(n ast.Node) bool {
	for p := sc.parents[n]; p != nil; p = sc.parents[p] {
		switch x := p.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BlockStmt:
			return endsInReturn(x.List)
		case *ast.CaseClause:
			return endsInReturn(x.Body)
		case *ast.CommClause:
			return endsInReturn(x.Body)
		}
	}
	return false
}

func endsInReturn(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	_, ok := list[len(list)-1].(*ast.ReturnStmt)
	return ok
}

// add registers one site; tracked sites additionally become taint
// sources for the classification run.
func (sc *siteScan) add(node ast.Node, kind, detail string, always bool) *allocSite {
	if _, dup := sc.byNode[node]; dup {
		return nil
	}
	s := &allocSite{
		id:     len(sc.an.sites),
		node:   node,
		pkg:    sc.pkg,
		fn:     sc.fn,
		kind:   kind,
		detail: detail,
		pos:    node.Pos(),
		always: always,
		heap:   always,
		loop:   sc.loopDepth(node) > 0,
		bail:   sc.bails(node),
	}
	sc.an.sites = append(sc.an.sites, s)
	sc.byNode[node] = s
	return s
}

func (sc *siteScan) typeString(t types.Type) string {
	return types.TypeString(t, types.RelativeTo(sc.pkg.Types))
}

// scan walks the whole declaration (function literals included) and
// registers candidate sites.
func (sc *siteScan) scan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			sc.compositeSite(x)
		case *ast.CallExpr:
			sc.callSites(x)
		case *ast.UnaryExpr:
			sc.addressSite(x)
		case *ast.SliceExpr:
			sc.arraySliceSite(x)
		case *ast.FuncLit:
			sc.closureSite(x)
		case *ast.GoStmt:
			sc.goSite(x)
		case *ast.DeferStmt:
			if sc.loopDepth(x) > 0 {
				sc.add(x, kindDeferLoop, "defer in loop", true)
			}
		case *ast.AssignStmt:
			sc.recordMakeAssigns(x.Lhs, x.Rhs)
		case *ast.ValueSpec:
			sc.recordMakeAssigns(identExprs(x.Names), x.Values)
		}
		return true
	})
	sc.resolveAppends()
	sc.resolveGrowIdiom()
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

// compositeSite: slice and map literals allocate backing storage;
// struct and array literals are pure values and allocate only when
// their address is taken (the &T{...} form, registered on the &).
func (sc *siteScan) compositeSite(x *ast.CompositeLit) {
	tv, ok := sc.pkg.Info.Types[x]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		sc.add(x, kindComposite, sc.typeString(tv.Type)+" literal", false)
	case *types.Map:
		sc.add(x, kindComposite, sc.typeString(tv.Type)+" literal", true)
	default:
		if u, isAddr := sc.parents[x].(*ast.UnaryExpr); isAddr && u.Op == token.AND {
			sc.add(u, kindComposite, "&"+sc.typeString(tv.Type)+"{}", false)
		}
	}
}

// callSites classifies one call: builtin make/new, allocating
// conversions, fmt/errors formatting, interface-boxing arguments and
// variadic packing.
func (sc *siteScan) callSites(x *ast.CallExpr) {
	switch builtinName(sc.pkg, x) {
	case "make":
		sc.makeSite(x)
		return
	case "new":
		tv := sc.pkg.Info.Types[x]
		if tv.Type != nil {
			sc.add(x, kindNew, "new("+sc.typeString(deref(tv.Type))+")", false)
		}
		return
	case "append":
		sc.appendCalls = append(sc.appendCalls, x)
		return
	case "copy":
		if len(x.Args) > 0 {
			if id, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok {
				if obj := sc.pkg.Info.Uses[id]; obj != nil {
					sc.copyObjs = append(sc.copyObjs, obj)
				}
			}
		}
		return
	case "":
		// not a builtin: fall through
	default:
		return
	}
	fun := ast.Unparen(x.Fun)
	if tv, ok := sc.pkg.Info.Types[fun]; ok && tv.IsType() {
		sc.conversionSite(x, tv.Type)
		return
	}
	if sc.formatSite(x) {
		sc.boxedArgs(x) // %v operands box before fmt sees them
		return
	}
	sc.boxedArgs(x)
	sc.variadicPack(x)
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// makeSite: maps, channels and dynamically-sized slices always hit the
// heap; a constant-size slice make is stack-eligible until it escapes.
func (sc *siteScan) makeSite(x *ast.CallExpr) {
	tv := sc.pkg.Info.Types[x]
	if tv.Type == nil {
		return
	}
	detail := "make(" + sc.typeString(tv.Type) + ")"
	switch tv.Type.Underlying().(type) {
	case *types.Chan:
		// A channel is a synchronization primitive, not a poolable
		// buffer: census it, but never suggest sync.Pool for it.
		if s := sc.add(x, kindMake, detail, true); s != nil {
			s.noPool = true
		}
	case *types.Map:
		sc.add(x, kindMake, detail, true)
	case *types.Slice:
		always := false
		for _, arg := range x.Args[1:] {
			if av, ok := sc.pkg.Info.Types[arg]; !ok || av.Value == nil {
				always = true // runtime-sized: the compiler cannot stack it
			}
		}
		sc.add(x, kindMake, detail, always)
	}
}

// conversionSite registers string<->[]byte/[]rune conversions, which
// copy their operand into fresh storage. Conversions the compiler
// performs allocation-free — map-index keys, comparison operands,
// switch tags — are exempt.
func (sc *siteScan) conversionSite(x *ast.CallExpr, to types.Type) {
	if len(x.Args) != 1 {
		return
	}
	fromTV, ok := sc.pkg.Info.Types[x.Args[0]]
	if !ok || fromTV.Type == nil || !allocatingConversion(fromTV.Type, to) {
		return
	}
	switch p := sc.parents[x].(type) {
	case *ast.IndexExpr:
		if p.Index == x {
			if btv, found := sc.pkg.Info.Types[p.X]; found && btv.Type != nil {
				if _, isMap := btv.Type.Underlying().(*types.Map); isMap {
					return // m[string(b)] lookup: no copy
				}
			}
		}
	case *ast.BinaryExpr:
		if p.Op == token.EQL || p.Op == token.NEQ {
			return // string(b) == s comparison: no copy
		}
	case *ast.SwitchStmt:
		if p.Tag == x {
			return // switch string(b): compared, not materialized
		}
	}
	sc.add(x, kindStringConv, sc.typeString(to)+" conversion", false)
}

// allocatingConversion: string <-> byte/rune slice copies storage.
func allocatingConversion(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteish := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteish(from)) || (isByteish(to) && isStr(from))
}

// formatSite flags fmt.* and errors.New/Join calls, which allocate
// their result (and usually more) unconditionally.
func (sc *siteScan) formatSite(x *ast.CallExpr) bool {
	callee := calleeOf(sc.pkg, x)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	switch callee.Pkg().Path() {
	case "fmt":
		sc.add(x, kindFormat, "fmt."+callee.Name()+" call", true)
		return true
	case "errors":
		if callee.Name() == "New" || callee.Name() == "Join" {
			sc.add(x, kindFormat, "errors."+callee.Name()+" call", true)
			return true
		}
	}
	return false
}

// boxedArgs registers an iface-box site for every argument whose
// concrete, non-pointer-shaped value is converted to an interface
// parameter. Constants are exempt (small values are served from the
// runtime's static box table).
func (sc *siteScan) boxedArgs(x *ast.CallExpr) {
	sig := callSignature(sc.pkg, x)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range x.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if x.Ellipsis.IsValid() {
				continue // s... passes the slice itself
			}
			if params.Len() == 0 {
				continue
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				paramT = sl.Elem()
			}
		case i < params.Len():
			paramT = params.At(i).Type()
		}
		if paramT == nil || !types.IsInterface(paramT) {
			continue
		}
		atv, ok := sc.pkg.Info.Types[arg]
		if !ok || atv.Type == nil || atv.Value != nil {
			continue
		}
		if types.IsInterface(atv.Type) || pointerShaped(atv.Type) {
			continue
		}
		if b, isBasic := atv.Type.Underlying().(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
			continue
		}
		sc.add(arg, kindIfaceBox, "interface boxing of "+sc.typeString(atv.Type), true)
	}
}

// variadicPack registers the hidden []T a non-ellipsis call to a
// variadic function builds. A module callee whose summary keeps the
// pack inside its frame lets the compiler stack it.
func (sc *siteScan) variadicPack(x *ast.CallExpr) {
	sig := callSignature(sc.pkg, x)
	if sig == nil || !sig.Variadic() || x.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	if params.Len() == 0 || len(x.Args) < params.Len() {
		return // zero variadic arguments: a nil slice, no allocation
	}
	if callee := calleeOf(sc.pkg, x); callee != nil {
		if sum := sc.an.esc[callee]; sum != nil {
			last := params.Len() - 1
			if !sum.escArg(last) && !sum.retArg(last) {
				return
			}
		}
	}
	sc.add(x, kindVariadic, "variadic argument pack", true)
}

func callSignature(pkg *Package, x *ast.CallExpr) *types.Signature {
	tv, ok := pkg.Info.Types[ast.Unparen(x.Fun)]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// addressSite: &local moves the variable to the heap if the pointer
// escapes. Addresses of fields or globals point into storage that
// already exists.
func (sc *siteScan) addressSite(x *ast.UnaryExpr) {
	if x.Op != token.AND {
		return
	}
	id, ok := ast.Unparen(x.X).(*ast.Ident)
	if !ok {
		return
	}
	if v := sc.localVar(id); v != nil {
		sc.add(x, kindMovedLocal, "&"+id.Name, false)
	}
}

// arraySliceSite: slicing a local array yields a pointer into the
// frame; if the slice escapes, the array moves with it.
func (sc *siteScan) arraySliceSite(x *ast.SliceExpr) {
	id, ok := ast.Unparen(x.X).(*ast.Ident)
	if !ok {
		return
	}
	v := sc.localVar(id)
	if v == nil {
		return
	}
	if _, isArr := v.Type().Underlying().(*types.Array); isArr {
		sc.add(x, kindMovedLocal, id.Name+"[:]", false)
	}
}

func (sc *siteScan) localVar(id *ast.Ident) *types.Var {
	obj := sc.pkg.Info.Uses[id]
	if obj == nil {
		obj = sc.pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.IsField() || v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return v
}

// closureSite: a capturing function literal needs a closure object;
// whether it allocates depends on the closure escaping. Literals
// spawned by go (handled at the GoStmt) or invoked by a same-frame
// defer are excluded here.
func (sc *siteScan) closureSite(x *ast.FuncLit) {
	if call, ok := sc.parents[x].(*ast.CallExpr); ok && call.Fun == x {
		switch sc.parents[call].(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return
		}
	}
	if sc.capturesOutside(x) {
		sc.add(x, kindClosure, "func literal", false)
	}
}

func (sc *siteScan) capturesOutside(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		if found {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := sc.pkg.Info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		found = true
		return false
	})
	return found
}

// goSite: spawning a goroutine allocates when the spawned call needs a
// closure — a capturing literal, any bound arguments, or a method
// value wrapper. A bare `go f()` does not.
func (sc *siteScan) goSite(x *ast.GoStmt) {
	needs := len(x.Call.Args) > 0
	switch fun := ast.Unparen(x.Call.Fun).(type) {
	case *ast.FuncLit:
		needs = needs || sc.capturesOutside(fun)
	case *ast.SelectorExpr:
		if s, ok := sc.pkg.Info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			needs = true // method value wrapper captures the receiver
		}
	}
	if needs {
		sc.add(x, kindClosure, "go statement", true)
	}
}

// resolveAppends registers growth sites for appends that cannot lean
// on preallocated or reused storage: plain accumulator variables.
// Appends into struct fields, reslices (buf[:0]) and make-backed
// locals ride storage whose allocation is already accounted for.
func (sc *siteScan) resolveAppends() {
	madeObjs := make(map[types.Object]bool, len(sc.makePairs))
	for _, mp := range sc.makePairs {
		madeObjs[mp.obj] = true
	}
	for _, x := range sc.appendCalls {
		if len(x.Args) == 0 {
			continue
		}
		base, ok := ast.Unparen(x.Args[0]).(*ast.Ident)
		if !ok {
			continue // field or reslice base: reuse idiom
		}
		obj := sc.pkg.Info.Uses[base]
		if obj == nil {
			obj = sc.pkg.Info.Defs[base]
		}
		if obj == nil || madeObjs[obj] {
			continue
		}
		sc.add(x, kindAppend, "append growth", false)
	}
}

// recordMakeAssigns pairs `x := make(...)` so appends to x and the
// make+copy grow idiom can be recognized.
func (sc *siteScan) recordMakeAssigns(lhs []ast.Expr, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			continue
		}
		call, ok := ast.Unparen(rhs[i]).(*ast.CallExpr)
		if !ok || builtinName(sc.pkg, call) != "make" {
			continue
		}
		obj := sc.pkg.Info.Defs[id]
		if obj == nil {
			obj = sc.pkg.Info.Uses[id]
		}
		if obj != nil {
			sc.makePairs = append(sc.makePairs, makePair{obj: obj, call: call})
		}
	}
}

// resolveGrowIdiom exempts `grown := make(...); copy(grown, old)` from
// the pool-bypass rule: that is the sanctioned way to grow a pooled
// buffer, and the allocation amortizes as the pool converges on the
// working-set size.
func (sc *siteScan) resolveGrowIdiom() {
	copied := make(map[types.Object]bool, len(sc.copyObjs))
	for _, obj := range sc.copyObjs {
		copied[obj] = true
	}
	for _, mp := range sc.makePairs {
		if !copied[mp.obj] {
			continue
		}
		if s := sc.byNode[mp.call]; s != nil {
			s.growExempt = true
		}
	}
}

// classifyFn runs the prescan and the escape-classification taint pass
// over one hot function.
func (an *allocAnalysis) classifyFn(pkg *Package, decl *ast.FuncDecl, fn *types.Func) {
	sc := &siteScan{
		an:      an,
		pkg:     pkg,
		fn:      fn,
		parents: buildParents(decl),
		byNode:  make(map[ast.Node]*allocSite),
	}
	sc.scan(decl.Body)

	tracked := false
	for _, s := range sc.byNode {
		if !s.always {
			tracked = true
			break
		}
	}
	if !tracked {
		return
	}

	markHeap := func(src *cfg.Source, why string) {
		rest, found := strings.CutPrefix(src.Desc, allocSitePrefix)
		if !found {
			return
		}
		id, err := strconv.Atoi(rest)
		if err != nil || id < 0 || id >= len(an.sites) {
			return
		}
		s := an.sites[id]
		if !s.heap {
			s.heap = true
			s.escaped = why
		}
	}
	hooks := &escapeHooks{
		pkg:      pkg,
		idx:      an.g.idx,
		sums:     an.esc,
		onReturn: func(src *cfg.Source) { markHeap(src, "returned") },
		onEscape: markHeap,
	}
	spec := &cfg.Spec{
		Info: pkg.Info,
		SourceOf: func(e ast.Expr) (string, bool) {
			// Only escape-dependent sites become taint sources; the
			// always flag is fixed at registration so sourcing stays
			// stable across the solve and replay passes.
			s, ok := sc.byNode[e]
			if !ok || s.always {
				return "", false
			}
			return allocSitePrefix + strconv.Itoa(s.id), true
		},
		CallTaint: escCallTaint(pkg, an.esc),
		Sink:      hooks.sink,
	}
	cfg.Run(decl.Body, spec)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			cfg.Run(lit.Body, spec)
		}
		return true
	})
}

// report turns classified sites into diagnostics and attributes roots.
func (an *allocAnalysis) report(pools map[*Package]bool) {
	for _, s := range an.sites {
		s.roots = an.hot[s.fn]
		if !s.heap || len(s.roots) == 0 {
			continue
		}
		root := s.roots[0]
		fnName := s.pkg.Types.Name() + "." + shortFuncName(s.fn)
		switch {
		case s.kind == kindDeferLoop:
			an.diags = append(an.diags, Diagnostic{
				Analyzer: AllocHotPath{}.Name(),
				Pos:      s.pkg.Fset.Position(s.pos),
				Message: fmt.Sprintf("hot path (via %s): defer inside a loop allocates a defer record per iteration in %s",
					root, fnName),
			})
		case s.kind == kindFormat && s.loop && !s.bail:
			an.diags = append(an.diags, Diagnostic{
				Analyzer: AllocHotPath{}.Name(),
				Pos:      s.pkg.Fset.Position(s.pos),
				Message: fmt.Sprintf("hot path (via %s): %s allocates on every loop iteration in %s; move formatting off the hot loop",
					root, s.detail, fnName),
			})
		case poolBypassKind(s.kind) && s.loop && !s.bail && pools[s.pkg] && !s.growExempt && !s.noPool:
			an.diags = append(an.diags, Diagnostic{
				Analyzer: AllocHotPath{}.Name(),
				Pos:      s.pkg.Fset.Position(s.pos),
				Message: fmt.Sprintf("hot path (via %s): %s allocates on every loop iteration in %s; the package pools buffers — reuse a sync.Pool buffer or hoist the allocation",
					root, s.detail, fnName),
			})
		}
	}
}

func poolBypassKind(kind string) bool {
	switch kind {
	case kindMake, kindNew, kindComposite, kindAppend:
		return true
	}
	return false
}
