package vet

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/vet/cfg"
)

// WeakRand flags math/rand values flowing into cryptographic
// material: nonces, padding, keys, or handshake inputs. math/rand is
// deterministic and seedable — an eavesdropper who recovers the seed
// recovers every "random" byte, which breaks the channel's privacy
// claim outright. Sinks are arguments to crypto/* functions, to module
// key-derivation/signing helpers (hkdf/derive/mac/sign/seal/encrypt),
// and assignments into secret-named variables or fields. Values
// converted to time.Duration are classified benign at the conversion:
// backoff jitter (oncrpc reconnect) is exactly what math/rand is for.
// Module call chains propagate through the call-graph summary fixpoint
// (summary.go).
type WeakRand struct{}

// Name implements Analyzer.
func (WeakRand) Name() string { return "weak-rand" }

// Run implements Analyzer (single-package mode).
func (a WeakRand) Run(pkg *Package) []Diagnostic {
	return a.RunModule([]*Package{pkg})
}

// RunModule implements ModuleAnalyzer.
func (a WeakRand) RunModule(pkgs []*Package) []Diagnostic {
	base := func(pkg *Package) *cfg.Spec {
		return &cfg.Spec{
			Info:     pkg.Info,
			SourceOf: func(e ast.Expr) (string, bool) { return mathRandSource(pkg, e) },
			Conversion: func(to types.Type, src *cfg.Source) *cfg.Source {
				if isNamed(to, "time", "Duration") {
					return nil // backoff jitter, the legitimate use
				}
				return src
			},
		}
	}
	pol := summaryPolicy{
		mkSpec: base,
		sinkOf: func(pkg *Package, call *ast.CallExpr) (int, string) {
			sink, fill := cryptoSink(pkg, call)
			if sink == "" || fill {
				return -1, ""
			}
			return 0, sink
		},
	}
	ss := computeSummaries(buildCallGraph(pkgs), pol)

	var diags []Diagnostic
	for _, tgt := range taintTargets(pkgs) {
		tgt := tgt
		pkg := tgt.pkg
		spec := base(pkg)
		spec.CallTaint = ss.callTaintFor(pkg)
		report := func(pos ast.Node, src *cfg.Source, sink string) {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name(),
				Pos:      pkg.Fset.Position(pos.Pos()),
				Message: fmt.Sprintf("%s flows into %s in %s; cryptographic material needs crypto/rand",
					src.Desc, sink, tgt.decl.Name.Name),
			})
		}
		spec.Sink = func(n ast.Node, taintOf func(ast.Expr) *cfg.Source) {
			// Assignments into secret-named variables or fields.
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
				for i := range as.Lhs {
					name := lhsName(pkg, as.Lhs[i])
					if !secretName(name) {
						continue
					}
					if src := taintOf(as.Rhs[i]); src != nil {
						report(as, src, name)
					}
				}
			}
			cfg.Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sink, fill := cryptoSink(pkg, call); fill && sink != "" {
					// rand.Read(buf): the *argument* is filled with weak
					// bytes; flag secret-named destinations.
					for _, arg := range call.Args {
						if name := lhsName(pkg, arg); secretName(name) {
							report(call, &cfg.Source{Pos: call.Pos(), Desc: "math/rand.Read output"}, name)
						}
					}
					return true
				}
				// Direct crypto sinks plus module helpers whose summary
				// forwards an argument into one.
				ss.forCallSinks(pkg, call, taintOf, func(src *cfg.Source, what string) {
					report(call, src, what)
				})
				return true
			})
		}
		cfg.Run(tgt.body, spec)
	}
	return diags
}

// mathRandSource recognizes calls into math/rand (v1 and v2, package
// functions and *rand.Rand methods alike).
func mathRandSource(pkg *Package, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn, path := stdCallee(pkg, call)
	if fn == nil {
		return "", false
	}
	if path == "math/rand" || path == "math/rand/v2" {
		return "math/rand." + fn.Name(), true
	}
	return "", false
}

// cryptoSink classifies a call as a weak-rand sink: crypto/* package
// functions, module derivation/signing helpers, or (fill=true) a
// math/rand.Read that writes weak bytes into its argument.
func cryptoSink(pkg *Package, call *ast.CallExpr) (sink string, fill bool) {
	fn, path := stdCallee(pkg, call)
	if fn == nil {
		return "", false
	}
	if (path == "math/rand" || path == "math/rand/v2") && fn.Name() == "Read" {
		return "math/rand.Read", true
	}
	if path == "crypto" || strings.HasPrefix(path, "crypto/") {
		return path + "." + fn.Name(), false
	}
	lower := strings.ToLower(fn.Name())
	for _, kw := range []string{"hkdf", "derive", "mac", "seal", "sign", "encrypt", "finished"} {
		if strings.Contains(lower, kw) {
			return fn.Name(), false
		}
	}
	return "", false
}

// lhsName names an assignment target or buffer argument: the variable
// or field identifier behind selectors, slices and address-taking.
func lhsName(pkg *Package, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.SliceExpr:
		return lhsName(pkg, x.X)
	case *ast.IndexExpr:
		return lhsName(pkg, x.X)
	case *ast.StarExpr:
		return lhsName(pkg, x.X)
	case *ast.UnaryExpr:
		return lhsName(pkg, x.X)
	}
	return ""
}

// secretName reports whether an identifier names cryptographic
// material.
func secretName(name string) bool {
	if name == "" {
		return false
	}
	l := strings.ToLower(name)
	if l == "iv" || l == "key" {
		return true
	}
	for _, kw := range []string{"nonce", "secret", "salt", "pad"} {
		if strings.Contains(l, kw) {
			return true
		}
	}
	return strings.HasSuffix(l, "key")
}
