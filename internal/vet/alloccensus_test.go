package vet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureCensus loads the allochotpath fixture and runs the census
// with paths relativized to the fixture directory.
func fixtureCensus(t *testing.T) *CensusReport {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", "allochotpath")
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := AllocCensus([]*Package{pkg}, abs)
	if rep == nil {
		t.Fatal("census is nil despite a hot-path root in the fixture")
	}
	return rep
}

func TestAllocCensusFixture(t *testing.T) {
	t.Parallel()
	rep := fixtureCensus(t)
	if rep.Schema != AllocCensusSchema {
		t.Fatalf("schema = %d, want %d", rep.Schema, AllocCensusSchema)
	}
	if len(rep.Roots) != 1 {
		t.Fatalf("roots = %+v, want exactly one", rep.Roots)
	}
	root := rep.Roots[0]
	if root.Root != "allochotpath.process" {
		t.Fatalf("root name = %q", root.Root)
	}
	// process plus the eight helpers it reaches; cold is excluded.
	if root.Funcs != 9 {
		t.Errorf("root funcs = %d, want 9", root.Funcs)
	}
	if root.HeapSites != len(rep.Sites) {
		t.Errorf("root heap sites = %d, but census lists %d", root.HeapSites, len(rep.Sites))
	}

	byKey := make(map[string]AllocSiteRecord)
	for _, s := range rep.Sites {
		if s.File != "allochotpath.go" {
			t.Errorf("site file %q not relativized", s.File)
		}
		if len(s.Roots) != 1 || s.Roots[0] != "allochotpath.process" {
			t.Errorf("site %s:%d roots = %v", s.File, s.Line, s.Roots)
		}
		byKey[s.Func+"/"+s.Kind] = s
	}
	// The escaping make in the root's loop and the defer record must be
	// censused; the stack-only scratch and anything in cold must not.
	if _, ok := byKey["allochotpath.process/"+kindMake]; !ok {
		t.Errorf("escaping make in process missing from census: %+v", rep.Sites)
	}
	if _, ok := byKey["allochotpath.process/"+kindDeferLoop]; !ok {
		t.Errorf("defer-in-loop site missing from census")
	}
	for k := range byKey {
		if strings.HasPrefix(k, "allochotpath.stackOnly/") {
			t.Errorf("stack-only scratch censused as heap: %s", k)
		}
		if strings.HasPrefix(k, "allochotpath.cold/") {
			t.Errorf("cold function censused: %s", k)
		}
	}
}

func TestAllocCensusRoundTrip(t *testing.T) {
	t.Parallel()
	rep := fixtureCensus(t)
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "allocs.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAllocBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if problems := CompareAllocBudget(loaded, rep); len(problems) != 0 {
		t.Fatalf("census does not fit its own baseline: %v", problems)
	}
}

func TestLoadAllocBaselineSchemaMismatch(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "allocs.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99, "roots": [], "sites": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAllocBaseline(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("err = %v, want schema mismatch", err)
	}
}

func TestCompareAllocBudget(t *testing.T) {
	t.Parallel()
	site := func(file, fn, kind string, line int) AllocSiteRecord {
		return AllocSiteRecord{File: file, Line: line, Func: fn, Kind: kind, Roots: []string{"p.Root"}}
	}
	baseline := &CensusReport{
		Schema: AllocCensusSchema,
		Roots:  []AllocRootRecord{{Root: "p.Root", Funcs: 2, HeapSites: 3}},
		Sites: []AllocSiteRecord{
			site("a.go", "p.f", kindMake, 10),
			site("a.go", "p.f", kindMake, 20),
			site("a.go", "p.g", kindFormat, 30),
		},
	}

	t.Run("identical", func(t *testing.T) {
		if p := CompareAllocBudget(baseline, baseline); len(p) != 0 {
			t.Fatalf("problems = %v", p)
		}
	})
	t.Run("line drift tolerated", func(t *testing.T) {
		cur := &CensusReport{
			Schema: AllocCensusSchema,
			Roots:  []AllocRootRecord{{Root: "p.Root", Funcs: 2, HeapSites: 3}},
			Sites: []AllocSiteRecord{
				site("a.go", "p.f", kindMake, 12),
				site("a.go", "p.f", kindMake, 25),
				site("a.go", "p.g", kindFormat, 33),
			},
		}
		if p := CompareAllocBudget(baseline, cur); len(p) != 0 {
			t.Fatalf("problems = %v", p)
		}
	})
	t.Run("bucket growth", func(t *testing.T) {
		cur := &CensusReport{
			Schema: AllocCensusSchema,
			Roots:  []AllocRootRecord{{Root: "p.Root", Funcs: 2, HeapSites: 4}},
			Sites: append(append([]AllocSiteRecord(nil), baseline.Sites...),
				site("a.go", "p.f", kindMake, 40)),
		}
		p := CompareAllocBudget(baseline, cur)
		if len(p) != 2 {
			t.Fatalf("problems = %v, want bucket growth and root growth", p)
		}
		if !strings.Contains(p[0], "grew") || !strings.Contains(p[1], "grew") {
			t.Fatalf("problems = %v", p)
		}
	})
	t.Run("new bucket", func(t *testing.T) {
		cur := &CensusReport{
			Schema: AllocCensusSchema,
			Roots:  []AllocRootRecord{{Root: "p.Root", Funcs: 2, HeapSites: 3}},
			Sites: []AllocSiteRecord{
				site("a.go", "p.f", kindMake, 10),
				site("a.go", "p.f", kindMake, 20),
				site("b.go", "p.h", kindClosure, 5),
			},
		}
		p := CompareAllocBudget(baseline, cur)
		if len(p) != 1 || !strings.Contains(p[0], "not in baseline") {
			t.Fatalf("problems = %v, want one new-bucket report", p)
		}
	})
	t.Run("unknown root", func(t *testing.T) {
		cur := &CensusReport{
			Schema: AllocCensusSchema,
			Roots: []AllocRootRecord{
				{Root: "p.Root", Funcs: 2, HeapSites: 3},
				{Root: "p.Other", Funcs: 1, HeapSites: 1},
			},
			Sites: baseline.Sites,
		}
		p := CompareAllocBudget(baseline, cur)
		if len(p) != 1 || !strings.Contains(p[0], "p.Other") {
			t.Fatalf("problems = %v, want unknown-root report", p)
		}
	})
	t.Run("shrink is fine", func(t *testing.T) {
		cur := &CensusReport{
			Schema: AllocCensusSchema,
			Roots:  []AllocRootRecord{{Root: "p.Root", Funcs: 2, HeapSites: 1}},
			Sites:  []AllocSiteRecord{site("a.go", "p.f", kindMake, 10)},
		}
		if p := CompareAllocBudget(baseline, cur); len(p) != 0 {
			t.Fatalf("problems = %v", p)
		}
	})
}
