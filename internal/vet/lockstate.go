package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockWalker traverses a function body statement by statement keeping
// the set of mutexes currently held. It is deliberately flow-simple:
// branches are explored with a copy of the held set and assumed not to
// change it for the code that follows (the `if cond { mu.Unlock();
// return }` idiom stays precise; a branch that unlocks and falls
// through needs an allowlist entry). Nested function literals start
// with an empty held set — they run on their own goroutine or after
// the region ends.
type lockWalker struct {
	pkg *Package

	// async makes the walker precise about asynchronous boundaries for
	// interprocedural analyses: nested function literals are handed to
	// onFuncLit instead of being walked inline, and the call spawned by
	// a `go` statement is not reported through onCall — the goroutine
	// does not run under the spawner's locks.
	async bool

	// onCall is invoked for every call expression outside nested
	// function literals with the mutexes held at that point.
	onCall func(call *ast.CallExpr, held map[string]token.Pos)

	// onAccess is invoked for every selector expression (write=true for
	// assignment targets) with the mutexes held at that point.
	onAccess func(sel *ast.SelectorExpr, write bool, held map[string]token.Pos)

	// onLock is invoked at every acquisition with the selector being
	// locked, its normalized name, and the set of mutexes held before
	// this acquisition takes effect.
	onLock func(sel *ast.SelectorExpr, name string, pos token.Pos, held map[string]token.Pos)

	// onFuncLit receives nested function literals in async mode; the
	// callee decides in which context (if any) to walk their bodies.
	onFuncLit func(lit *ast.FuncLit)
}

func (w *lockWalker) walkBody(body *ast.BlockStmt) {
	w.walkStmts(body.List, map[string]token.Pos{})
}

func (w *lockWalker) walkStmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, s := range list {
		w.walkStmt(s, held)
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if sel, name, locked, ok := w.lockOp(s.X); ok {
			if locked {
				if w.onLock != nil {
					w.onLock(sel, name, s.Pos(), held)
				}
				held[name] = s.Pos()
			} else {
				delete(held, name)
			}
			return
		}
		w.scanExpr(s.X, held)
	case *ast.DeferStmt:
		if _, _, locked, ok := w.lockOp(s.Call); ok && !locked {
			return // defer mu.Unlock(): held until the region ends
		}
		w.scanExpr(s.Call, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.scanExpr(rhs, held)
		}
		for _, lhs := range s.Lhs {
			w.scanLHS(lhs, held)
		}
	case *ast.IncDecStmt:
		w.scanLHS(s.X, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		w.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		inner := copyHeld(held)
		w.walkStmts(s.Body.List, inner)
		if s.Post != nil {
			w.walkStmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		w.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.scanExpr(e, held)
				}
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.walkStmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := copyHeld(held)
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, inner)
				}
				w.walkStmts(cc.Body, inner)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, held)
		}
	case *ast.GoStmt:
		if w.async {
			// The spawned call runs outside the spawner's critical
			// section; only its operands evaluate synchronously.
			for _, arg := range s.Call.Args {
				w.scanExpr(arg, held)
			}
			switch fun := s.Call.Fun.(type) {
			case *ast.FuncLit:
				if w.onFuncLit != nil {
					w.onFuncLit(fun)
				}
			case *ast.SelectorExpr:
				w.scanExpr(fun.X, held)
			}
			return
		}
		w.scanExpr(s.Call, held)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	}
}

// scanExpr reports reads and calls inside e. Function literal bodies
// are walked with an empty held set.
func (w *lockWalker) scanExpr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if w.async {
				if w.onFuncLit != nil {
					w.onFuncLit(n)
				}
				return false
			}
			w.walkStmts(n.Body.List, map[string]token.Pos{})
			return false
		case *ast.CallExpr:
			if w.onCall != nil {
				w.onCall(n, held)
			}
		case *ast.SelectorExpr:
			if w.onAccess != nil {
				w.onAccess(n, false, held)
			}
		}
		return true
	})
}

// scanLHS treats a direct selector target as a write; anything inside
// it (index expressions, the selector base) is still a read.
func (w *lockWalker) scanLHS(e ast.Expr, held map[string]token.Pos) {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if w.onAccess != nil {
			w.onAccess(sel, true, held)
		}
		w.scanExpr(sel.X, held)
		return
	}
	if _, ok := e.(*ast.Ident); ok {
		return
	}
	w.scanExpr(e, held)
}

// lockOp recognizes mu.Lock/Unlock/RLock/RUnlock on a sync.Mutex or
// sync.RWMutex and returns the mutex selector, its normalized name and
// whether the operation acquires it.
func (w *lockWalker) lockOp(e ast.Expr) (sel *ast.SelectorExpr, name string, locked, ok bool) {
	return lockOpOf(w.pkg, e)
}

func lockOpOf(pkg *Package, e ast.Expr) (sel *ast.SelectorExpr, name string, locked, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return nil, "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locked = true
	case "Unlock", "RUnlock":
	default:
		return nil, "", false, false
	}
	if !isSyncLocker(pkg.Info.Types[sel.X].Type) {
		return nil, "", false, false
	}
	return sel, exprString(sel.X), locked, true
}

// isSyncLocker reports whether t is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func isSyncLocker(t types.Type) bool {
	t = derefType(t)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}

func derefType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedType returns the named type behind t, unwrapping one pointer.
func namedType(t types.Type) *types.Named {
	t = derefType(t)
	named, _ := t.(*types.Named)
	return named
}

// isNamed reports whether t is (a pointer to) pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	named := namedType(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// exprString renders a (selector) expression for diagnostics.
func exprString(e ast.Expr) string {
	var b strings.Builder
	writeExprString(&b, e)
	return b.String()
}

func writeExprString(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		b.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExprString(b, x.X)
		b.WriteByte('.')
		b.WriteString(x.Sel.Name)
	case *ast.StarExpr:
		writeExprString(b, x.X)
	case *ast.ParenExpr:
		writeExprString(b, x.X)
	case *ast.IndexExpr:
		writeExprString(b, x.X)
		b.WriteString("[]")
	case *ast.CallExpr:
		writeExprString(b, x.Fun)
		b.WriteString("()")
	default:
		fmt.Fprintf(b, "<%T>", e)
	}
}
