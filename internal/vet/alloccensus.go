package vet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The alloc census and budget. AllocCensus runs the alloc-hotpath
// pipeline and reports every heap-classified site reachable from each
// //sgfsvet:hot-path root. The report is committed as a baseline
// (.sgfsvet-allocs.json); CompareAllocBudget diffs a fresh census
// against it by (file, function, kind) bucket and by per-root totals,
// so CI fails when a change adds heap allocations to a hot path — but
// tolerates line drift and welcomes shrinkage without churn.

// AllocCensusSchema versions the baseline file format.
const AllocCensusSchema = 1

// AllocSiteRecord is one heap-classified allocation site.
type AllocSiteRecord struct {
	File   string   `json:"file"`
	Line   int      `json:"line"`
	Func   string   `json:"func"`
	Kind   string   `json:"kind"`
	Detail string   `json:"detail,omitempty"`
	Roots  []string `json:"roots"`
}

// AllocRootRecord totals one hot-path root's exposure.
type AllocRootRecord struct {
	Root      string `json:"root"`
	Funcs     int    `json:"funcs"`
	HeapSites int    `json:"heap_sites"`
}

// CensusReport is the full alloc census, as serialized to the
// baseline file.
type CensusReport struct {
	Schema int               `json:"schema"`
	Roots  []AllocRootRecord `json:"roots"`
	Sites  []AllocSiteRecord `json:"sites"`
}

// AllocCensus analyzes pkgs and returns the census of heap sites per
// hot-path root. File paths are relativized to moduleRoot when given.
// Returns nil when no //sgfsvet:hot-path directives exist.
func AllocCensus(pkgs []*Package, moduleRoot string) *CensusReport {
	an := analyzeAllocs(pkgs)
	if an == nil {
		return nil
	}
	rep := &CensusReport{Schema: AllocCensusSchema}

	rootFuncs := make(map[string]int)
	rootSites := make(map[string]int)
	for _, roots := range an.hot {
		for _, r := range roots {
			rootFuncs[r]++
		}
	}
	for _, s := range an.sites {
		if !s.heap || len(s.roots) == 0 {
			continue
		}
		pos := s.pkg.Fset.Position(s.pos)
		file := filepath.ToSlash(pos.Filename)
		if moduleRoot != "" {
			if rel, err := filepath.Rel(moduleRoot, pos.Filename); err == nil {
				file = filepath.ToSlash(rel)
			}
		}
		roots := append([]string(nil), s.roots...)
		rep.Sites = append(rep.Sites, AllocSiteRecord{
			File:   file,
			Line:   pos.Line,
			Func:   s.pkg.Types.Name() + "." + shortFuncName(s.fn),
			Kind:   s.kind,
			Detail: s.detail,
			Roots:  roots,
		})
		for _, r := range roots {
			rootSites[r]++
		}
	}
	sort.Slice(rep.Sites, func(i, j int) bool {
		a, b := rep.Sites[i], rep.Sites[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Kind < b.Kind
	})

	names := make([]string, 0, len(rootFuncs))
	for r := range rootFuncs {
		names = append(names, r)
	}
	sort.Strings(names)
	for _, r := range names {
		rep.Roots = append(rep.Roots, AllocRootRecord{
			Root:      r,
			Funcs:     rootFuncs[r],
			HeapSites: rootSites[r],
		})
	}
	return rep
}

// JSON serializes the report in the stable baseline format.
func (r *CensusReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// LoadAllocBaseline reads a committed census baseline.
func LoadAllocBaseline(path string) (*CensusReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep CensusReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != AllocCensusSchema {
		return nil, fmt.Errorf("%s: schema %d, want %d (regenerate with -alloc-census)", path, rep.Schema, AllocCensusSchema)
	}
	return &rep, nil
}

// allocBucket is the budget granularity: sites are compared per
// (file, function, kind), so moving a line or renaming a detail does
// not trip the gate — adding an allocation does.
type allocBucket struct {
	File string
	Func string
	Kind string
}

func bucketCounts(r *CensusReport) map[allocBucket]int {
	out := make(map[allocBucket]int)
	for _, s := range r.Sites {
		out[allocBucket{File: s.File, Func: s.Func, Kind: s.Kind}]++
	}
	return out
}

// CompareAllocBudget reports budget violations: buckets whose heap-site
// count grew over the baseline, new buckets, and roots whose totals
// grew. Shrinking is always within budget (refresh the baseline to
// lock it in). The returned messages are empty when current fits.
func CompareAllocBudget(baseline, current *CensusReport) []string {
	var problems []string

	base := bucketCounts(baseline)
	cur := bucketCounts(current)
	keys := make([]allocBucket, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Kind < b.Kind
	})
	for _, k := range keys {
		if cur[k] > base[k] {
			if base[k] == 0 {
				problems = append(problems, fmt.Sprintf(
					"%s: %s: new hot-path heap allocation (%s, %d site(s)) not in baseline",
					k.File, k.Func, k.Kind, cur[k]))
			} else {
				problems = append(problems, fmt.Sprintf(
					"%s: %s: hot-path heap allocations grew: %d %s site(s), baseline %d",
					k.File, k.Func, cur[k], k.Kind, base[k]))
			}
		}
	}

	baseRoots := make(map[string]int, len(baseline.Roots))
	for _, r := range baseline.Roots {
		baseRoots[r.Root] = r.HeapSites
	}
	for _, r := range current.Roots {
		b, known := baseRoots[r.Root]
		if !known {
			problems = append(problems, fmt.Sprintf(
				"root %s: not in baseline (%d heap sites); regenerate with -alloc-census", r.Root, r.HeapSites))
			continue
		}
		if r.HeapSites > b {
			problems = append(problems, fmt.Sprintf(
				"root %s: heap sites grew to %d, baseline %d", r.Root, r.HeapSites, b))
		}
	}
	return problems
}
