package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// CtxDeadline checks that upstream RPC entry points are only reachable
// through deadline-bearing contexts. A sink is any method named Call
// or CallCred whose first parameter is a context.Context — the shape
// of every RPC issue point in this module (oncrpc.Client,
// oncrpc.ReconnectClient, and the proxy upcall wrappers around them).
//
// Context expressions are classified flow-insensitively per variable:
// context.WithTimeout/WithDeadline results are deadline-bearing,
// WithCancel/WithValue inherit from their parent, Background/TODO can
// never gain a deadline, and a context parameter defers the obligation
// to the caller. A variable assigned a bearing value anywhere counts
// as bearing everywhere — conditional `if r != nil { ctx, cancel =
// context.WithTimeout(...) }` guards therefore pass, which is the
// deliberate lenient bias. Obligations propagate interprocedurally:
// when a function forwards its context parameter into a sink (or into
// another obligated function) through a direct call, each of its
// callers must supply a deadline-bearing or parameter context;
// passing context.Background()/TODO() there is a finding. Contexts of
// unknown provenance (struct fields, function results) are trusted
// silently, as are calls through function values and interfaces with
// no unique static callee.
type CtxDeadline struct {
	// Packages restricts reporting to call sites in these import
	// paths; empty reports everywhere. The propagation itself always
	// runs over the whole module.
	Packages []string
}

// Name implements Analyzer.
func (CtxDeadline) Name() string { return "ctx-deadline" }

// Run implements Analyzer over a single package.
func (a CtxDeadline) Run(pkg *Package) []Diagnostic {
	return a.RunModule([]*Package{pkg})
}

const (
	ctxUnbounded = iota // Background/TODO: can never gain a deadline
	ctxUnknown          // field, function result, untracked
	ctxParam            // aliases a context parameter of the function
	ctxBearing          // WithTimeout/WithDeadline somewhere on the path
)

type ctxStatus struct {
	kind  int
	param *types.Var // set for ctxParam
}

// RunModule implements ModuleAnalyzer.
func (a CtxDeadline) RunModule(pkgs []*Package) []Diagnostic {
	idx := indexModule(pkgs)

	type site struct {
		pkg         *Package
		pos         token.Pos
		desc        string
		arg         ctxStatus
		sink        bool
		calleeParam *types.Var // obligation target for non-sink sites
	}
	var sites []site

	seen := make(map[*Package]bool)
	for _, pkg := range pkgs {
		if seen[pkg] {
			continue
		}
		seen[pkg] = true
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				status := classifyContexts(pkg, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeOf(pkg, call)
					if callee == nil {
						return true
					}
					sig, ok := callee.Type().(*types.Signature)
					if !ok {
						return true
					}
					params := sig.Params()
					if isRPCSink(callee, sig) {
						if len(call.Args) > 0 {
							sites = append(sites, site{
								pkg:  pkg,
								pos:  call.Pos(),
								desc: exprString(call.Fun),
								arg:  exprCtxStatus(pkg, status, call.Args[0]),
								sink: true,
							})
						}
						return true
					}
					if _, inModule := idx.decls[callee]; !inModule {
						return true
					}
					for i := 0; i < params.Len() && i < len(call.Args); i++ {
						if sig.Variadic() && i == params.Len()-1 {
							break
						}
						if !isContextType(params.At(i).Type()) {
							continue
						}
						sites = append(sites, site{
							pkg:         pkg,
							pos:         call.Pos(),
							desc:        exprString(call.Fun),
							arg:         exprCtxStatus(pkg, status, call.Args[i]),
							calleeParam: params.At(i),
						})
					}
					return true
				})
			}
		}
	}

	// Propagate obligations from sinks up through context parameters.
	needy := make(map[*types.Var]bool)
	for changed := true; changed; {
		changed = false
		for _, s := range sites {
			obligated := s.sink || (s.calleeParam != nil && needy[s.calleeParam])
			if obligated && s.arg.kind == ctxParam && !needy[s.arg.param] {
				needy[s.arg.param] = true
				changed = true
			}
		}
	}

	inScope := func(pkg *Package) bool {
		if len(a.Packages) == 0 {
			return true
		}
		for _, p := range a.Packages {
			if pkg.ImportPath == p {
				return true
			}
		}
		return false
	}
	var diags []Diagnostic
	for _, s := range sites {
		if !inScope(s.pkg) || s.arg.kind != ctxUnbounded {
			continue
		}
		if s.sink {
			diags = append(diags, Diagnostic{
				Analyzer: "ctx-deadline",
				Pos:      s.pkg.Fset.Position(s.pos),
				Message:  fmt.Sprintf("upstream RPC %s is issued with a context that can never carry a deadline", s.desc),
			})
		} else if needy[s.calleeParam] {
			diags = append(diags, Diagnostic{
				Analyzer: "ctx-deadline",
				Pos:      s.pkg.Fset.Position(s.pos),
				Message:  fmt.Sprintf("call to %s passes a deadline-free context into an upstream RPC path", s.desc),
			})
		}
	}
	return diags
}

// isRPCSink reports whether fn is an RPC issue point: a method named
// Call or CallCred taking a context.Context first.
func isRPCSink(fn *types.Func, sig *types.Signature) bool {
	if sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Call", "CallCred":
	default:
		return false
	}
	return sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// classifyContexts assigns a deadline status to every context-typed
// variable in fd by iterating its assignments to a fixpoint. The
// merge is lenient: bearing beats param beats unknown beats unbounded.
func classifyContexts(pkg *Package, fd *ast.FuncDecl) map[*types.Var]ctxStatus {
	status := make(map[*types.Var]ctxStatus)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
					status[v] = ctxStatus{kind: ctxParam, param: v}
				}
			}
		}
	}
	assign := func(lhs ast.Expr, st ctxStatus) bool {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return false
		}
		v, ok := pkg.Info.Defs[id].(*types.Var)
		if !ok {
			v, ok = pkg.Info.Uses[id].(*types.Var)
		}
		if !ok || !isContextType(v.Type()) {
			return false
		}
		if old, seen := status[v]; !seen || st.kind > old.kind {
			status[v] = st
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if assign(lhs, exprCtxStatus(pkg, status, n.Rhs[i])) {
							changed = true
						}
					}
					return true
				}
				// ctx, cancel := context.WithTimeout(...): tuple form.
				if len(n.Rhs) == 1 {
					st := exprCtxStatus(pkg, status, n.Rhs[0])
					for _, lhs := range n.Lhs {
						if assign(lhs, st) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, name := range n.Names {
						if assign(name, exprCtxStatus(pkg, status, n.Values[i])) {
							changed = true
						}
					}
				} else if len(n.Values) == 1 {
					st := exprCtxStatus(pkg, status, n.Values[0])
					for _, name := range n.Names {
						if assign(name, st) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return status
}

// exprCtxStatus classifies a context expression against the current
// variable statuses.
func exprCtxStatus(pkg *Package, status map[*types.Var]ctxStatus, e ast.Expr) ctxStatus {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			if st, ok := status[v]; ok {
				return st
			}
		}
		return ctxStatus{kind: ctxUnknown}
	case *ast.CallExpr:
		fn := calleeOf(pkg, x)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return ctxStatus{kind: ctxUnknown}
		}
		switch fn.Name() {
		case "WithTimeout", "WithDeadline":
			return ctxStatus{kind: ctxBearing}
		case "WithCancel", "WithValue", "WithoutCancel":
			if len(x.Args) > 0 {
				return exprCtxStatus(pkg, status, x.Args[0])
			}
		case "Background", "TODO":
			return ctxStatus{kind: ctxUnbounded}
		}
		return ctxStatus{kind: ctxUnknown}
	}
	return ctxStatus{kind: ctxUnknown}
}
