package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLeak flags `go` statements whose goroutine can block
// forever on a channel operation with no cancellation edge in sight.
// The spawned body (a function literal, or a same-package function
// resolved through the go statement) is scanned for channel sends,
// receives, ranges and selects; an operation is a finding unless one
// of these exits is visible:
//
//   - the receive comes from a call result (ctx.Done(), client.Done(),
//     time.After — any call, since the callee owns the channel's
//     lifecycle) or a timer/ticker's .C field;
//   - the channel is close()d somewhere in the same package (receives
//     and ranges unblock on close);
//   - the send targets a channel made with a buffer in the spawning
//     function (the result-channel idiom: the send completes even if
//     the consumer is gone);
//   - the operation sits in a select with a default or with at least
//     two cases (one of them is presumed to be the cancel edge; a
//     single-case select is just a bare operation).
//
// The analysis is name-based within one package: it cannot see
// channels closed by another package, prove that a buffered send has
// capacity, or track channels through function values — those shapes
// need an .sgfsvet-ignore entry or a refactor.
type GoroutineLeak struct{}

// Name implements Analyzer.
func (GoroutineLeak) Name() string { return "goroutine-leak" }

// Run implements Analyzer.
func (GoroutineLeak) Run(pkg *Package) []Diagnostic {
	closed := closedChannels(pkg)

	// Same-package function declarations, to resolve `go m.loop()`.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	type key struct {
		pos token.Pos
		msg string
	}
	reported := make(map[key]bool)
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		k := key{pos, msg}
		if reported[k] {
			return
		}
		reported[k] = true
		diags = append(diags, Diagnostic{
			Analyzer: "goroutine-leak",
			Pos:      pkg.Fset.Position(pos),
			Message:  msg,
		})
	}

	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			buffered := bufferedLocals(pkg, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				var body *ast.BlockStmt
				if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
					body = lit.Body
				} else if fn := calleeOf(pkg, gs.Call); fn != nil {
					if fdecl, ok := decls[fn]; ok {
						body = fdecl.Body
					}
				}
				if body != nil {
					scanGoroutineBody(pkg, body, closed, buffered, report)
				}
				return true
			})
		}
	}
	return diags
}

// scanGoroutineBody reports unguarded blocking channel operations in
// one spawned body.
func scanGoroutineBody(pkg *Package, body *ast.BlockStmt, closed, buffered map[string]bool,
	report func(token.Pos, string)) {

	exemptRecv := func(ch ast.Expr) bool {
		switch x := ast.Unparen(ch).(type) {
		case *ast.CallExpr:
			// The callee owns the channel: Done(), time.After, etc.
			return true
		case *ast.SelectorExpr:
			if x.Sel.Name == "C" {
				base := namedType(pkg.Info.Types[x.X].Type)
				if base != nil && base.Obj().Pkg() != nil && base.Obj().Pkg().Path() == "time" {
					return true
				}
			}
		}
		return closed[chanID(pkg, ch)]
	}
	exemptSend := func(ch ast.Expr) bool {
		if id, ok := ast.Unparen(ch).(*ast.Ident); ok {
			if v, ok := pkg.Info.Uses[id].(*types.Var); ok && buffered[v.Name()] {
				return true
			}
		}
		return false
	}

	// Selects are judged as a whole; their comm clauses are excluded
	// from the bare-operation scan below.
	inSelect := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false // nested goroutines judged at their own spawn site
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		exempt := false
		cases := 0
		var bare []ast.Node
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				exempt = true // default case: never blocks
				continue
			}
			cases++
			inSelect[cc.Comm] = true
			bare = append(bare, cc.Comm)
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				if exemptSend(comm.Chan) {
					exempt = true
				}
			case *ast.ExprStmt:
				if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW && exemptRecv(u.X) {
					exempt = true
				}
			case *ast.AssignStmt:
				if len(comm.Rhs) == 1 {
					if u, ok := comm.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW && exemptRecv(u.X) {
						exempt = true
					}
				}
			}
		}
		if exempt || cases >= 2 {
			return true
		}
		// A single-case select is a bare operation in disguise.
		for _, comm := range bare {
			delete(inSelect, comm)
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		if inSelect[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if !exemptSend(n.Chan) {
				report(n.Pos(), fmt.Sprintf(
					"goroutine blocks sending to %s with no cancellation edge (no buffer in the spawner, close, or select)",
					chanLabel(pkg, n.Chan)))
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if !exemptRecv(n.X) {
				report(n.Pos(), fmt.Sprintf(
					"goroutine blocks receiving from %s with no cancellation edge (no close, Done, or deadline in scope)",
					chanLabel(pkg, n.X)))
			}
		case *ast.RangeStmt:
			tv, ok := pkg.Info.Types[n.X]
			if !ok {
				return true
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				return true
			}
			if !exemptRecv(n.X) {
				report(n.X.Pos(), fmt.Sprintf(
					"goroutine ranges over %s, which is never closed in this package",
					chanLabel(pkg, n.X)))
			}
		}
		return true
	})
}

// closedChannels collects the identities of channels passed to the
// close builtin anywhere in the package (including test-adjacent
// helper methods in non-test files).
func closedChannels(pkg *Package) map[string]bool {
	closed := make(map[string]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "close" {
				return true
			}
			if cid := chanID(pkg, call.Args[0]); cid != "" {
				closed[cid] = true
			}
			return true
		})
	}
	return closed
}

// bufferedLocals collects names of local variables in fd that hold
// channels made with a buffer, so sends to them from a goroutine
// spawned by fd are recognized as non-blocking result delivery.
func bufferedLocals(pkg *Package, fd *ast.FuncDecl) map[string]bool {
	buffered := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				continue
			}
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			if tv, ok := pkg.Info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
				continue
			}
			if lhs, ok := as.Lhs[i].(*ast.Ident); ok {
				buffered[lhs.Name] = true
			}
		}
		return true
	})
	return buffered
}

// chanID names a channel expression for close-site matching: plain
// identifiers by name, struct fields by Type.field.
func chanID(pkg *Package, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if named := namedType(pkg.Info.Types[x.X].Type); named != nil {
				return named.Obj().Name() + "." + x.Sel.Name
			}
		}
	}
	return ""
}

// chanLabel renders a channel expression for diagnostics.
func chanLabel(pkg *Package, e ast.Expr) string {
	if id := chanID(pkg, e); id != "" {
		return id
	}
	return exprString(e)
}
