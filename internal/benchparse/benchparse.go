// Package benchparse parses `go test -bench` output into structured
// results for the benchmark-archiving commands (sgfs-bench5,
// sgfs-bench6).
package benchparse

import (
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Package     string             `json:"package"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	OpsPerSec   float64            `json:"ops_per_sec"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Parse extracts benchmark lines from `go test -bench` output. A line
// looks like:
//
//	BenchmarkCallEcho-4  9506  118419 ns/op  1320 B/op  15 allocs/op
//	BenchmarkFlushScaling/workers=8-4  1  310146346 ns/op  117.0 flush-ms
func Parse(pkg, out string) []Result {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{
			Package:    pkg,
			Name:       strings.TrimSuffix(fields[0], "-"+lastDash(fields[0])),
			Iterations: iters,
		}
		// The remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = val
				if val > 0 {
					r.OpsPerSec = 1e9 / val
				}
			case "B/op":
				v := val
				r.BytesPerOp = &v
			case "allocs/op":
				v := val
				r.AllocsPerOp = &v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = val
			}
		}
		results = append(results, r)
	}
	return results
}

// lastDash returns the GOMAXPROCS suffix of a benchmark name ("4" in
// "BenchmarkCallEcho-4"), or "" when there is none.
func lastDash(name string) string {
	if i := strings.LastIndex(name, "-"); i >= 0 {
		return name[i+1:]
	}
	return ""
}
