package placement

import (
	"fmt"
	"testing"
)

func backends(n int) []BackendInfo {
	bs := make([]BackendInfo, n)
	for i := range bs {
		bs[i] = BackendInfo{ID: i, Addr: fmt.Sprintf("b%d:30049", i)}
	}
	return bs
}

func TestDefaultsAndValidation(t *testing.T) {
	p, err := New(backends(5), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Replicas != 3 || p.Quorum != 2 || p.GroupBlocks != 64 {
		t.Fatalf("defaults: %+v", p)
	}
	if p, err = New(backends(2), 0, 0); err != nil || p.Replicas != 2 || p.Quorum != 2 {
		t.Fatalf("small-pool defaults: %+v %v", p, err)
	}

	bad := []struct {
		n, k, q int
	}{
		{0, 0, 0}, // no backends
		{3, 4, 0}, // k > n
		{3, 2, 3}, // quorum > k
	}
	for _, c := range bad {
		if _, err := New(backends(c.n), c.k, c.q); err == nil {
			t.Errorf("New(%d backends, k=%d, q=%d) accepted", c.n, c.k, c.q)
		}
	}
	dup := []BackendInfo{{ID: 1}, {ID: 1}}
	if _, err := New(dup, 0, 0); err == nil {
		t.Error("duplicate backend IDs accepted")
	}
}

func TestReplicasForDeterministicAndGrouped(t *testing.T) {
	p, err := New(backends(5), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	fh := []byte("canonical-file-handle")

	// Same (fh, block) always yields the same ordered set, and every
	// block of a group shares it.
	want := p.ReplicasFor(fh, 0)
	if len(want) != 3 {
		t.Fatalf("replica set size %d", len(want))
	}
	for b := uint64(0); b < p.GroupBlocks; b++ {
		got := p.ReplicasFor(fh, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("block %d replica set %v != group set %v", b, got, want)
			}
		}
	}
	seen := map[int]bool{}
	for _, id := range want {
		if seen[id] {
			t.Fatalf("duplicate backend in replica set %v", want)
		}
		seen[id] = true
		if !p.Covers(fh, 0, id) {
			t.Fatalf("Covers disagrees with ReplicasFor for %d", id)
		}
	}
	if p.Covers(fh, 0, 99) {
		t.Fatal("Covers reports an unknown backend")
	}

	// Different groups move (FNV mixing): across many groups every
	// backend should lead at least once.
	primaries := map[int]bool{}
	for g := uint64(0); g < 64; g++ {
		primaries[p.ReplicasFor(fh, g*p.GroupBlocks)[0]] = true
	}
	if len(primaries) != 5 {
		t.Fatalf("only %d of 5 backends ever primary across 64 groups", len(primaries))
	}
}

// TestStabilityUnderPoolGrowth pins the rendezvous property: adding a
// backend reshuffles only groups the new backend now wins, never
// reordering survivors among themselves.
func TestStabilityUnderPoolGrowth(t *testing.T) {
	old, err := New(backends(4), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := New(backends(5), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	fh := []byte("stable-under-growth")
	moved := 0
	for g := uint64(0); g < 256; g++ {
		block := g * old.GroupBlocks
		before, after := old.ReplicasFor(fh, block), grown.ReplicasFor(fh, block)
		same := before[0] == after[0] && before[1] == after[1]
		if !same {
			moved++
			// Any change must involve the new backend; survivors never
			// swap places among themselves.
			if after[0] != 4 && after[1] != 4 {
				t.Fatalf("group %d reshuffled without backend 4: %v -> %v", g, before, after)
			}
		}
	}
	// Expected churn is ~ 2/5 of groups (k slots of n+1 pool); anything
	// beyond 3/5 means the hash is not behaving like rendezvous.
	if moved > 256*3/5 {
		t.Fatalf("%d of 256 groups moved on pool growth", moved)
	}
}
