// Package placement is the replicated-namespace placement layer shared
// by the data path (internal/proxy) and the management plane
// (internal/services): it maps file block ranges onto ordered replica
// sets of backends with deterministic rendezvous hashing, so every
// client proxy, repair worker and scheduler computes identical replica
// sets with no coordination.
package placement

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// Placement is the replicated-namespace placement layer: it maps file
// block ranges onto ordered replica sets of backends. The paper's
// FSS/DSS broker one session against one server; a Placement describes
// one session against N servers, so a dead backend degrades the
// replica set instead of killing the mount.
//
// Placement is deterministic rendezvous (highest-random-weight)
// hashing: every (file handle, block group, backend) triple hashes to
// a weight, and a block group's replica set is the top-Replicas
// backends by weight. Determinism means every client proxy, repair
// worker and scheduler computes identical replica sets with no
// coordination, and adding a backend reshuffles only ~1/N of the
// groups.
type Placement struct {
	// Backends is the replica pool. IDs index the client proxy's
	// dialer list; Addr is informational (logs, scheduling responses).
	Backends []BackendInfo
	// Replicas is k: how many backends hold each block group.
	// Defaults to min(3, len(Backends)).
	Replicas int
	// Quorum is how many replica acks a write needs before it is
	// acknowledged. Defaults to Replicas/2+1.
	Quorum int
	// GroupBlocks is the placement granularity in cache blocks:
	// GroupBlocks consecutive blocks share one replica set, so
	// sequential I/O keeps hitting the same backends. Default 64
	// (2 MiB at the default 32 KiB block size).
	GroupBlocks uint64
}

// BackendInfo describes one replica backend (a server-side proxy
// endpoint).
type BackendInfo struct {
	ID   int
	Addr string
}

// NewPlacement builds a validated placement over backends. replicas
// and quorum of 0 select the defaults.
func New(backends []BackendInfo, replicas, quorum int) (*Placement, error) {
	p := &Placement{Backends: backends, Replicas: replicas, Quorum: quorum}
	if err := p.Init(); err != nil {
		return nil, err
	}
	return p, nil
}

// Init applies defaults and validates the placement.
func (p *Placement) Init() error {
	n := len(p.Backends)
	if n == 0 {
		return fmt.Errorf("placement: needs at least one backend")
	}
	if p.Replicas == 0 {
		p.Replicas = 3
		if n < 3 {
			p.Replicas = n
		}
	}
	if p.Replicas < 1 || p.Replicas > n {
		return fmt.Errorf("placement: replicas %d out of range [1,%d]", p.Replicas, n)
	}
	if p.Quorum == 0 {
		p.Quorum = p.Replicas/2 + 1
	}
	if p.Quorum < 1 || p.Quorum > p.Replicas {
		return fmt.Errorf("placement: quorum %d out of range [1,%d]", p.Quorum, p.Replicas)
	}
	if p.GroupBlocks == 0 {
		p.GroupBlocks = 64
	}
	seen := make(map[int]bool, n)
	for _, b := range p.Backends {
		if seen[b.ID] {
			return fmt.Errorf("placement: has duplicate backend id %d", b.ID)
		}
		seen[b.ID] = true
	}
	return nil
}

// Group returns the placement group a block index belongs to.
func (p *Placement) Group(block uint64) uint64 { return block / p.GroupBlocks }

// ReplicasFor returns the ordered replica set (backend IDs, primary
// first) holding the given block of the file identified by fh. The
// order is part of the contract: reads prefer earlier entries, so
// load spreads by group while every computation of the same group
// agrees on the primary.
func (p *Placement) ReplicasFor(fh []byte, block uint64) []int {
	type weighted struct {
		id int
		w  uint64
	}
	group := p.Group(block)
	ws := make([]weighted, len(p.Backends))
	for i, b := range p.Backends {
		h := fnv.New64a()
		h.Write(fh)
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[0:8], group)
		binary.BigEndian.PutUint64(buf[8:16], uint64(b.ID))
		h.Write(buf[:])
		ws[i] = weighted{id: b.ID, w: h.Sum64()}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].w != ws[j].w {
			return ws[i].w > ws[j].w
		}
		return ws[i].id < ws[j].id
	})
	out := make([]int, p.Replicas)
	for i := range out {
		out[i] = ws[i].id
	}
	return out
}

// Covers reports whether backend id is in the replica set for the
// given block of fh.
func (p *Placement) Covers(fh []byte, block uint64, id int) bool {
	for _, r := range p.ReplicasFor(fh, block) {
		if r == id {
			return true
		}
	}
	return false
}
