package soapmsg

import (
	"bytes"
	"encoding/xml"
	"errors"
	"testing"
	"time"

	"repro/internal/gridsec"
)

type createReq struct {
	XMLName xml.Name `xml:"CreateSession"`
	Export  string   `xml:"Export"`
	Suite   string   `xml:"Suite"`
}

func pki(t *testing.T) (*gridsec.CA, *gridsec.Credential) {
	t.Helper()
	ca, err := gridsec.NewCA("SOAP Grid")
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.IssueUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	return ca, user
}

func TestSignVerifyRoundTrip(t *testing.T) {
	ca, user := pki(t)
	body, _ := MarshalBody(createReq{Export: "/GFS/alice", Suite: "aes"})
	env, err := Sign("CreateSession", body, user)
	if err != nil {
		t.Fatal(err)
	}
	action, gotBody, dn, err := Verify(env, ca.Pool())
	if err != nil {
		t.Fatal(err)
	}
	if action != "CreateSession" {
		t.Fatalf("action %q", action)
	}
	if dn != user.DN() {
		t.Fatalf("dn %q", dn)
	}
	var req createReq
	if err := UnmarshalBody(gotBody, &req); err != nil {
		t.Fatal(err)
	}
	if req.Export != "/GFS/alice" || req.Suite != "aes" {
		t.Fatalf("body %+v", req)
	}
}

func TestProxyCredentialSigning(t *testing.T) {
	ca, user := pki(t)
	proxy, err := user.IssueProxy(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := MarshalBody(createReq{Export: "/x"})
	env, err := Sign("CreateSession", body, proxy)
	if err != nil {
		t.Fatal(err)
	}
	_, _, dn, err := Verify(env, ca.Pool())
	if err != nil {
		t.Fatal(err)
	}
	if dn != user.DN() {
		t.Fatalf("delegated message attributed to %q, want %q", dn, user.DN())
	}
}

func TestTamperedBodyRejected(t *testing.T) {
	ca, user := pki(t)
	body, _ := MarshalBody(createReq{Export: "/GFS/alice"})
	env, _ := Sign("CreateSession", body, user)
	tampered := bytes.Replace(env, []byte("/GFS/alice"), []byte("/GFS/mallo"), 1)
	if !bytes.Contains(tampered, []byte("/GFS/mallo")) {
		t.Fatal("test setup: tampering failed")
	}
	if _, _, _, err := Verify(tampered, ca.Pool()); !errors.Is(err, ErrBadDigest) {
		t.Fatalf("got %v, want ErrBadDigest", err)
	}
}

func TestUntrustedSignerRejected(t *testing.T) {
	ca, _ := pki(t)
	rogueCA, _ := gridsec.NewCA("Rogue")
	mallory, _ := rogueCA.IssueUser("mallory")
	body, _ := MarshalBody(createReq{})
	env, _ := Sign("X", body, mallory)
	if _, _, _, err := Verify(env, ca.Pool()); !errors.Is(err, gridsec.ErrNotTrusted) {
		t.Fatalf("got %v", err)
	}
}

func TestUnsignedEnvelopeRejected(t *testing.T) {
	ca, _ := pki(t)
	raw := []byte(`<Envelope xmlns="ns"><Header></Header><Body><X/></Body></Envelope>`)
	if _, _, _, err := Verify(raw, ca.Pool()); !errors.Is(err, ErrNoSecurityHeader) {
		t.Fatalf("got %v", err)
	}
}

func TestGarbageRejected(t *testing.T) {
	ca, _ := pki(t)
	if _, _, _, err := Verify([]byte("not xml at all <<<"), ca.Pool()); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSignatureFromWrongKeyRejected(t *testing.T) {
	ca, user := pki(t)
	bob, _ := ca.IssueUser("bob")
	body, _ := MarshalBody(createReq{Export: "/x"})
	// Sign with bob's key but present alice's certificate: splice the
	// envelopes.
	envAlice, _ := Sign("A", body, user)
	envBob, _ := Sign("A", body, bob)
	// Extract bob's SignatureValue and inject into alice's envelope.
	sigStart := bytes.Index(envBob, []byte("<SignatureValue>"))
	sigEnd := bytes.Index(envBob, []byte("</SignatureValue>"))
	bobSig := envBob[sigStart : sigEnd+len("</SignatureValue>")]
	aStart := bytes.Index(envAlice, []byte("<SignatureValue>"))
	aEnd := bytes.Index(envAlice, []byte("</SignatureValue>"))
	spliced := append([]byte{}, envAlice[:aStart]...)
	spliced = append(spliced, bobSig...)
	spliced = append(spliced, envAlice[aEnd+len("</SignatureValue>"):]...)
	if _, _, _, err := Verify(spliced, ca.Pool()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("got %v", err)
	}
}
