// Package soapmsg implements the message-level security layer the
// SGFS management services use (§3.2, §4.4): SOAP envelopes whose
// bodies are signed with X.509 credentials per the WS-Security
// pattern — a BinarySecurityToken carrying the sender's certificate
// chain, a digest of the body, and a signature over the digest.
//
// Substitution note (documented in DESIGN.md): full XML-DSig requires
// exclusive canonicalization; since both endpoints are this
// implementation, the signature covers the exact transmitted bytes of
// the Body element instead. The security properties relevant to the
// reproduction — sender authentication by certificate, body integrity,
// and GSI-compatible identity for authorization — are preserved.
package soapmsg

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/base64"
	"encoding/xml"
	"errors"
	"fmt"
	"strings"

	"repro/internal/gridsec"
)

// Namespace URIs (abbreviated).
const (
	nsEnvelope = "http://schemas.xmlsoap.org/soap/envelope/"
	nsSecurity = "http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-wssecurity-secext-1.0.xsd"
)

// Signature and verification errors.
var (
	ErrNoSecurityHeader = errors.New("soapmsg: envelope lacks a Security header")
	ErrBadSignature     = errors.New("soapmsg: body signature verification failed")
	ErrBadDigest        = errors.New("soapmsg: body digest mismatch")
	ErrMalformed        = errors.New("soapmsg: malformed envelope")
)

// envelope is the XML shape of a signed message.
type envelope struct {
	XMLName xml.Name `xml:"Envelope"`
	NS      string   `xml:"xmlns,attr"`
	Header  header   `xml:"Header"`
	Body    inner    `xml:"Body"`
}

type header struct {
	Security security `xml:"Security"`
	Action   string   `xml:"Action"`
}

type security struct {
	NS             string   `xml:"xmlns,attr"`
	BinaryTokens   []string `xml:"BinarySecurityToken"`
	DigestValue    string   `xml:"Signature>SignedInfo>Reference>DigestValue"`
	SignatureValue string   `xml:"Signature>SignatureValue"`
}

type inner struct {
	Raw []byte `xml:",innerxml"`
}

// Sign wraps bodyXML in a SOAP envelope with a WS-Security header:
// the signer's certificate chain as BinarySecurityTokens, the SHA-256
// digest of the body, and an ECDSA signature over the digest.
func Sign(action string, bodyXML []byte, cred *gridsec.Credential) ([]byte, error) {
	digest := sha256.Sum256(bodyXML)
	sig, err := ecdsa.SignASN1(rand.Reader, cred.Key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("soapmsg: sign: %w", err)
	}
	tokens := make([]string, len(cred.Chain))
	for i, c := range cred.Chain {
		tokens[i] = base64.StdEncoding.EncodeToString(c.Raw)
	}
	env := envelope{
		NS: nsEnvelope,
		Header: header{
			Action: action,
			Security: security{
				NS:             nsSecurity,
				BinaryTokens:   tokens,
				DigestValue:    base64.StdEncoding.EncodeToString(digest[:]),
				SignatureValue: base64.StdEncoding.EncodeToString(sig),
			},
		},
		Body: inner{Raw: bodyXML},
	}
	out, err := xml.Marshal(env)
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), out...), nil
}

// Verify parses a signed envelope, validates the sender's certificate
// chain against roots, checks the body digest and signature, and
// returns the action, the body XML, and the sender's effective grid
// DN.
func Verify(data []byte, roots *x509.CertPool) (action string, body []byte, dn string, err error) {
	var env envelope
	if err := xml.Unmarshal(stripHeader(data), &env); err != nil {
		return "", nil, "", fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	sec := env.Header.Security
	if len(sec.BinaryTokens) == 0 || sec.SignatureValue == "" {
		return "", nil, "", ErrNoSecurityHeader
	}
	chain := make([]*x509.Certificate, len(sec.BinaryTokens))
	for i, tok := range sec.BinaryTokens {
		der, err := base64.StdEncoding.DecodeString(strings.TrimSpace(tok))
		if err != nil {
			return "", nil, "", fmt.Errorf("%w: bad token encoding", ErrMalformed)
		}
		cert, err := x509.ParseCertificate(der)
		if err != nil {
			return "", nil, "", fmt.Errorf("%w: bad certificate", ErrMalformed)
		}
		chain[i] = cert
	}
	dn, err = gridsec.VerifyChain(chain, roots)
	if err != nil {
		return "", nil, "", err
	}

	body = env.Body.Raw
	digest := sha256.Sum256(body)
	wantDigest, err := base64.StdEncoding.DecodeString(strings.TrimSpace(sec.DigestValue))
	if err != nil || len(wantDigest) != len(digest) {
		return "", nil, "", ErrBadDigest
	}
	for i := range digest {
		if digest[i] != wantDigest[i] {
			return "", nil, "", ErrBadDigest
		}
	}
	sig, err := base64.StdEncoding.DecodeString(strings.TrimSpace(sec.SignatureValue))
	if err != nil {
		return "", nil, "", ErrBadSignature
	}
	pub, ok := chain[0].PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return "", nil, "", ErrBadSignature
	}
	if !ecdsa.VerifyASN1(pub, digest[:], sig) {
		return "", nil, "", ErrBadSignature
	}
	return env.Header.Action, body, dn, nil
}

func stripHeader(data []byte) []byte {
	s := string(data)
	if i := strings.Index(s, "?>"); i >= 0 && strings.HasPrefix(strings.TrimSpace(s), "<?xml") {
		return []byte(s[i+2:])
	}
	return data
}

// MarshalBody renders a Go value as the body payload.
func MarshalBody(v any) ([]byte, error) { return xml.Marshal(v) }

// UnmarshalBody parses a body payload into a Go value.
func UnmarshalBody(body []byte, v any) error { return xml.Unmarshal(body, v) }
