package mountd

import (
	"context"
	"net"
	"testing"

	"repro/internal/oncrpc"
	"repro/internal/vfs"
)

func startMountd(t *testing.T, exports ...*Export) string {
	t.Helper()
	rpc := oncrpc.NewServer()
	md := NewServer()
	for _, e := range exports {
		md.AddExport(e)
	}
	md.Register(rpc)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rpc.Serve(l)
	t.Cleanup(rpc.Close)
	return l.Addr().String()
}

func dialMountd(t *testing.T, addr string) *oncrpc.Client {
	t.Helper()
	c, err := oncrpc.Dial("tcp", addr, Program, Version)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestMntReturnsRootHandle(t *testing.T) {
	fs := vfs.NewMemFS()
	addr := startMountd(t, &Export{Path: "/GFS/x", FS: fs})
	c := dialMountd(t, addr)
	var res MntRes
	if err := c.Call(context.Background(), ProcMnt, &MntArgs{Path: "/GFS/x"}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != MntOK {
		t.Fatalf("status %d", res.Status)
	}
	if res.FH.Handle() != fs.Root() {
		t.Fatal("wrong root handle")
	}
	if len(res.Flavors) == 0 || res.Flavors[0] != oncrpc.AuthFlavorSys {
		t.Fatalf("flavors %v", res.Flavors)
	}
}

func TestMntUnknownExport(t *testing.T) {
	addr := startMountd(t, &Export{Path: "/GFS/x", FS: vfs.NewMemFS()})
	c := dialMountd(t, addr)
	var res MntRes
	if err := c.Call(context.Background(), ProcMnt, &MntArgs{Path: "/GFS/nope"}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != MntNoEnt {
		t.Fatalf("status %d, want MntNoEnt", res.Status)
	}
}

func TestMntLocalhostOnlyDefault(t *testing.T) {
	// The default export policy admits loopback peers only, matching
	// the paper's "exported to the localhost" rule. Loopback callers
	// (this test) are admitted; the policy logic itself is checked
	// directly for a foreign address.
	e := &Export{Path: "/x", FS: vfs.NewMemFS()}
	if !hostAllowed(e, fakeAddr("127.0.0.1:999")) {
		t.Fatal("loopback denied")
	}
	if hostAllowed(e, fakeAddr("10.0.0.9:999")) {
		t.Fatal("remote host admitted by localhost-only export")
	}
}

func TestMntAllowedHosts(t *testing.T) {
	e := &Export{Path: "/x", FS: vfs.NewMemFS(), AllowedHosts: []string{"10.0."}}
	if !hostAllowed(e, fakeAddr("10.0.3.4:12")) {
		t.Fatal("prefix-matched host denied")
	}
	if hostAllowed(e, fakeAddr("10.1.3.4:12")) {
		t.Fatal("non-matching host admitted")
	}
	wild := &Export{Path: "/y", FS: vfs.NewMemFS(), AllowedHosts: []string{"*"}}
	if !hostAllowed(wild, fakeAddr("192.168.1.1:5")) {
		t.Fatal("wildcard export denied a host")
	}
}

type fakeAddr string

func (a fakeAddr) Network() string { return "tcp" }
func (a fakeAddr) String() string  { return string(a) }

func TestExportList(t *testing.T) {
	addr := startMountd(t,
		&Export{Path: "/a", FS: vfs.NewMemFS()},
		&Export{Path: "/b", FS: vfs.NewMemFS(), AllowedHosts: []string{"10.0."}})
	c := dialMountd(t, addr)
	var res ExportRes
	if err := c.Call(context.Background(), ProcExport, nil, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Exports) != 2 {
		t.Fatalf("exports %v", res.Exports)
	}
}

func TestUmntIsVoid(t *testing.T) {
	addr := startMountd(t, &Export{Path: "/a", FS: vfs.NewMemFS()})
	c := dialMountd(t, addr)
	if err := c.Call(context.Background(), ProcUmnt, &MntArgs{Path: "/a"}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveExport(t *testing.T) {
	fs := vfs.NewMemFS()
	rpc := oncrpc.NewServer()
	md := NewServer()
	md.AddExport(&Export{Path: "/gone", FS: fs})
	md.Register(rpc)
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	go rpc.Serve(l)
	defer rpc.Close()
	c := dialMountd(t, l.Addr().String())
	md.RemoveExport("/gone")
	var res MntRes
	if err := c.Call(context.Background(), ProcMnt, &MntArgs{Path: "/gone"}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != MntNoEnt {
		t.Fatalf("withdrawn export still mountable: %d", res.Status)
	}
}
