// Package mountd implements the MOUNT version 3 protocol (RFC 1813
// Appendix I) used by NFS clients to obtain the root file handle of an
// exported file system.
//
// The server keeps an exports table mapping export paths to backend
// file systems and an allowed-client list, mirroring the kernel
// exports file of the paper's deployment where the shared file system
// is exported only to localhost and remote access flows through the
// SGFS proxy (§5).
package mountd

import (
	"context"
	"net"
	"strings"
	"sync"

	"repro/internal/nfs3"
	"repro/internal/oncrpc"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// ONC RPC program number and version for MOUNT.
const (
	Program = 100005
	Version = 3
)

// MOUNT procedure numbers.
const (
	ProcNull    = 0
	ProcMnt     = 1
	ProcDump    = 2
	ProcUmnt    = 3
	ProcUmntAll = 4
	ProcExport  = 5
)

// Mount status codes.
const (
	MntOK     = 0
	MntAccess = 13
	MntNoEnt  = 2
	MntInval  = 22
)

// MntArgs is the dirpath argument of MNT and UMNT.
type MntArgs struct{ Path string }

// EncodeXDR implements xdr.Marshaler.
func (a *MntArgs) EncodeXDR(e *xdr.Encoder) { e.String(a.Path) }

// DecodeXDR implements xdr.Unmarshaler.
func (a *MntArgs) DecodeXDR(d *xdr.Decoder) { a.Path = d.String() }

// MntRes is the MNT result: a file handle plus accepted auth flavors.
type MntRes struct {
	Status  uint32
	FH      nfs3.FH3
	Flavors []uint32
}

// EncodeXDR implements xdr.Marshaler.
func (r *MntRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(r.Status)
	if r.Status == MntOK {
		r.FH.EncodeXDR(e)
		e.Uint32(uint32(len(r.Flavors)))
		for _, f := range r.Flavors {
			e.Uint32(f)
		}
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *MntRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = d.Uint32()
	if r.Status == MntOK {
		r.FH.DecodeXDR(d)
		n := d.Uint32()
		if n > 16 {
			return
		}
		r.Flavors = make([]uint32, n)
		for i := range r.Flavors {
			r.Flavors[i] = d.Uint32()
		}
	}
}

// ExportEntry describes one export in an EXPORT reply.
type ExportEntry struct {
	Path   string
	Groups []string
}

// ExportRes is the EXPORT result list.
type ExportRes struct{ Exports []ExportEntry }

// EncodeXDR implements xdr.Marshaler.
func (r *ExportRes) EncodeXDR(e *xdr.Encoder) {
	for _, ex := range r.Exports {
		e.OptionalBegin(true)
		e.String(ex.Path)
		for _, g := range ex.Groups {
			e.OptionalBegin(true)
			e.String(g)
		}
		e.OptionalBegin(false)
	}
	e.OptionalBegin(false)
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *ExportRes) DecodeXDR(d *xdr.Decoder) {
	r.Exports = nil
	for d.OptionalPresent() {
		var ex ExportEntry
		ex.Path = d.String()
		for d.OptionalPresent() {
			ex.Groups = append(ex.Groups, d.String())
			if d.Err() != nil {
				return
			}
		}
		r.Exports = append(r.Exports, ex)
		if d.Err() != nil {
			return
		}
	}
}

// Export binds an exported path to a backend and client restrictions.
type Export struct {
	Path string
	FS   vfs.FS
	// AllowedHosts lists host prefixes permitted to mount; empty means
	// localhost only, per the paper's server-side deployment rule.
	AllowedHosts []string
}

// Server is the mount daemon.
type Server struct {
	mu      sync.RWMutex
	exports map[string]*Export
}

// NewServer creates an empty mount daemon.
func NewServer() *Server { return &Server{exports: make(map[string]*Export)} }

// AddExport registers an export.
func (s *Server) AddExport(e *Export) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.exports[e.Path] = e
}

// RemoveExport withdraws an export.
func (s *Server) RemoveExport(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.exports, path)
}

// Register installs the MOUNT program on an RPC server.
func (s *Server) Register(r *oncrpc.Server) {
	r.Register(Program, Version, map[uint32]oncrpc.Handler{
		ProcMnt:    s.mnt,
		ProcUmnt:   s.umnt,
		ProcExport: s.export,
	})
}

func hostAllowed(e *Export, addr net.Addr) bool {
	host := ""
	if addr != nil {
		h, _, err := net.SplitHostPort(addr.String())
		if err != nil {
			// Not host:port — in-process transports report opaque
			// addresses; match against the raw string below.
			h = ""
		}
		host = h
	}
	if len(e.AllowedHosts) == 0 {
		return host == "127.0.0.1" || host == "::1" || host == "" ||
			strings.HasPrefix(addr.String(), "pipe") // in-process transports
	}
	for _, allowed := range e.AllowedHosts {
		if allowed == "*" || strings.HasPrefix(host, allowed) {
			return true
		}
	}
	return false
}

func (s *Server) mnt(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a MntArgs
	if call.DecodeArgs(&a) != nil {
		return nil, oncrpc.GarbageArgs
	}
	s.mu.RLock()
	e, ok := s.exports[a.Path]
	s.mu.RUnlock()
	if !ok {
		return &MntRes{Status: MntNoEnt}, oncrpc.Success
	}
	var remote net.Addr
	if call.Conn != nil {
		remote = call.Conn.RemoteAddr()
	}
	if !hostAllowed(e, remote) {
		return &MntRes{Status: MntAccess}, oncrpc.Success
	}
	return &MntRes{
		Status:  MntOK,
		FH:      nfs3.FromHandle(e.FS.Root()),
		Flavors: []uint32{oncrpc.AuthFlavorSys},
	}, oncrpc.Success
}

func (s *Server) umnt(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a MntArgs
	if call.DecodeArgs(&a) != nil {
		return nil, oncrpc.GarbageArgs
	}
	return nil, oncrpc.Success // void reply
}

func (s *Server) export(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	res := &ExportRes{}
	for path, e := range s.exports {
		groups := e.AllowedHosts
		if len(groups) == 0 {
			groups = []string{"localhost"}
		}
		res.Exports = append(res.Exports, ExportEntry{Path: path, Groups: groups})
	}
	return res, oncrpc.Success
}
