package gridmap

import (
	"path/filepath"
	"strings"
	"testing"
)

const sample = `
# SGFS session gridmap
"/C=US/O=SGFS Grid/OU=users/CN=alice" alice
"/C=US/O=SGFS Grid/OU=users/CN=bob"   alice
"/C=US/O=Other Grid/OU=users/CN=carol" guest
`

func TestParseAndLookup(t *testing.T) {
	m, err := Parse(strings.NewReader(sample), Deny)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("parsed %d entries", m.Len())
	}
	if acct, ok := m.Lookup("/C=US/O=SGFS Grid/OU=users/CN=alice"); !ok || acct != "alice" {
		t.Fatalf("alice -> %q %v", acct, ok)
	}
	// Bob is mapped to alice's account (the paper's sharing pattern).
	if acct, ok := m.Lookup("/C=US/O=SGFS Grid/OU=users/CN=bob"); !ok || acct != "alice" {
		t.Fatalf("bob -> %q %v", acct, ok)
	}
}

func TestDenyPolicy(t *testing.T) {
	m, _ := Parse(strings.NewReader(sample), Deny)
	if _, ok := m.Lookup("/C=US/CN=stranger"); ok {
		t.Fatal("stranger admitted under Deny policy")
	}
}

func TestAnonymousPolicy(t *testing.T) {
	m, _ := Parse(strings.NewReader(sample), Anonymous)
	acct, ok := m.Lookup("/C=US/CN=stranger")
	if !ok || acct != AnonymousAccount {
		t.Fatalf("stranger -> %q %v", acct, ok)
	}
}

func TestAddRemove(t *testing.T) {
	m := New(Deny)
	m.Add("/CN=x", "xacct")
	if acct, ok := m.Lookup("/CN=x"); !ok || acct != "xacct" {
		t.Fatal("add failed")
	}
	m.Remove("/CN=x")
	if _, ok := m.Lookup("/CN=x"); ok {
		t.Fatal("remove failed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`/CN=unquoted alice`,
		`"unterminated alice`,
		`"/CN=x"`,
		`"/CN=x" two words`,
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line), Deny); err == nil {
			t.Errorf("accepted bad line %q", line)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	m, _ := Parse(strings.NewReader(sample), Deny)
	m2, err := Parse(strings.NewReader(string(m.Serialize())), Deny)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != m.Len() {
		t.Fatalf("round trip lost entries: %d vs %d", m2.Len(), m.Len())
	}
	if acct, _ := m2.Lookup("/C=US/O=Other Grid/OU=users/CN=carol"); acct != "guest" {
		t.Fatal("round trip mangled mapping")
	}
}

func TestSaveLoad(t *testing.T) {
	m, _ := Parse(strings.NewReader(sample), Deny)
	path := filepath.Join(t.TempDir(), "gridmap")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, Deny)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 3 {
		t.Fatal("load lost entries")
	}
}
