// Package gridmap implements the GSI gridmap file: the mapping from a
// grid user's certificate distinguished name to a local account name.
// SGFS consults it per session for export-level access control (§4.3):
// a DN present in the map gains the mapped local user's rights; an
// absent DN is mapped to an anonymous account or denied outright,
// according to the session's policy.
//
// The file format matches Globus gridmap files:
//
//	"/C=US/O=SGFS Grid/OU=users/CN=alice" alice
//	# comments and blank lines are ignored
package gridmap

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// Policy selects what happens to DNs absent from the map.
type Policy int

// Unmapped-user policies.
const (
	// Deny refuses access for unmapped users.
	Deny Policy = iota
	// Anonymous maps unmapped users to the anonymous account.
	Anonymous
)

// AnonymousAccount is the account name unmapped users receive under
// the Anonymous policy.
const AnonymousAccount = "nobody"

// Map is a gridmap: DN → local account. It is safe for concurrent use
// and may be swapped wholesale on reload (SGFS reconfiguration).
type Map struct {
	mu      sync.RWMutex
	entries map[string]string
	policy  Policy
}

// New creates an empty gridmap with the given policy.
func New(policy Policy) *Map {
	return &Map{entries: make(map[string]string), policy: policy}
}

// Parse reads gridmap lines from r.
func Parse(r io.Reader, policy Policy) (*Map, error) {
	m := New(policy)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		dn, account, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("gridmap: line %d: %w", lineNo, err)
		}
		m.entries[dn] = account
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// Load reads a gridmap file from disk.
func Load(path string, policy Policy) (*Map, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f, policy)
}

func parseLine(line string) (dn, account string, err error) {
	if !strings.HasPrefix(line, `"`) {
		return "", "", fmt.Errorf("distinguished name must be quoted: %q", line)
	}
	end := strings.Index(line[1:], `"`)
	if end < 0 {
		return "", "", fmt.Errorf("unterminated quoted DN: %q", line)
	}
	dn = line[1 : 1+end]
	rest := strings.TrimSpace(line[2+end:])
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return "", "", fmt.Errorf("expected exactly one account name after DN: %q", line)
	}
	return dn, rest, nil
}

// Lookup maps a DN to a local account. ok is false when the user is
// denied; under the Anonymous policy unmapped users map to
// AnonymousAccount with ok true.
func (m *Map) Lookup(dn string) (account string, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if acct, found := m.entries[dn]; found {
		return acct, true
	}
	if m.policy == Anonymous {
		return AnonymousAccount, true
	}
	return "", false
}

// Add inserts or replaces a mapping (per-session sharing: a user adds
// a peer's DN mapped to her own account).
func (m *Map) Add(dn, account string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[dn] = account
}

// Remove deletes a mapping.
func (m *Map) Remove(dn string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, dn)
}

// Entries returns a copy of all explicit mappings.
func (m *Map) Entries() map[string]string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]string, len(m.entries))
	for k, v := range m.entries {
		out[k] = v
	}
	return out
}

// ReplaceAll swaps in the contents and policy of other — the gridmap
// reload a live session performs when its configuration file changes.
func (m *Map) ReplaceAll(other *Map) {
	other.mu.RLock()
	entries := make(map[string]string, len(other.entries))
	for k, v := range other.entries {
		entries[k] = v
	}
	policy := other.policy
	other.mu.RUnlock()
	m.mu.Lock()
	m.entries = entries
	m.policy = policy
	m.mu.Unlock()
}

// Len reports the number of explicit mappings.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// Serialize writes the map in gridmap file format, sorted by DN for
// stable output.
func (m *Map) Serialize() []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	dns := make([]string, 0, len(m.entries))
	for dn := range m.entries {
		dns = append(dns, dn)
	}
	sort.Strings(dns)
	var b strings.Builder
	for _, dn := range dns {
		fmt.Fprintf(&b, "%q %s\n", dn, m.entries[dn])
	}
	return []byte(b.String())
}

// Save writes the map to a file.
func (m *Map) Save(path string) error {
	return os.WriteFile(path, m.Serialize(), 0644)
}
