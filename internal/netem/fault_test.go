package netem

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestFaultResetAtByteOffset(t *testing.T) {
	t.Parallel()
	f := NewFaulter()
	f.SetPlan(FaultPlan{CutAfterBytes: 1024, Mode: FaultReset})
	c1, c2 := net.Pipe()
	w := f.Wrap(c1)
	defer w.Close()
	defer c2.Close()

	writeErr := make(chan error, 1)
	go func() {
		chunk := make([]byte, 256)
		for {
			if _, err := w.Write(chunk); err != nil {
				writeErr <- err
				return
			}
		}
	}()

	got := 0
	buf := make([]byte, 256)
	for {
		n, err := c2.Read(buf)
		got += n
		if err != nil {
			break
		}
	}
	if got < 1024 {
		t.Fatalf("peer received %d bytes before cut, want >= 1024", got)
	}
	select {
	case err := <-writeErr:
		if err == nil {
			t.Fatal("writer did not observe the cut")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer still running after cut")
	}
	if st := f.Stats(); st.Cuts != 1 {
		t.Fatalf("cuts = %d, want 1", st.Cuts)
	}
}

func TestFaultStallBlackholesReads(t *testing.T) {
	t.Parallel()
	f := NewFaulter()
	c1, c2 := net.Pipe()
	w := f.Wrap(c1)
	defer c2.Close()

	// Data flows before the stall.
	go c2.Write([]byte("before"))
	buf := make([]byte, 16)
	n, err := w.Read(buf)
	if err != nil || string(buf[:n]) != "before" {
		t.Fatalf("pre-stall read: %q, %v", buf[:n], err)
	}

	f.CutAll(FaultStall)

	// A stalled link delivers nothing and reports nothing, even when
	// the peer keeps writing.
	res := make(chan error, 1)
	go func() {
		_, err := w.Read(buf)
		res <- err
	}()
	go c2.Write([]byte("lost"))
	select {
	case err := <-res:
		t.Fatalf("read returned during stall: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Closing the connection finally surfaces the cut.
	w.Close()
	select {
	case err := <-res:
		if !errors.Is(err, ErrCut) {
			t.Fatalf("post-close error = %v, want ErrCut", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read still blocked after close")
	}
	if st := f.Stats(); st.Cuts != 1 || st.Live != 0 {
		t.Fatalf("stats = %+v, want 1 cut, 0 live", st)
	}
}

func TestFaultCutAfterDuration(t *testing.T) {
	t.Parallel()
	f := NewFaulter()
	f.SetPlan(FaultPlan{CutAfter: 20 * time.Millisecond, Mode: FaultReset})
	c1, c2 := net.Pipe()
	w := f.Wrap(c1)
	defer w.Close()
	defer c2.Close()

	done := make(chan error, 1)
	go func() {
		_, err := w.Read(make([]byte, 8))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("timed cut produced no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed cut never fired")
	}
}

func TestFaultDialFlakiness(t *testing.T) {
	t.Parallel()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	f := NewFaulter()
	dial := f.Dialer(func() (net.Conn, error) { return net.Dial("tcp", l.Addr().String()) })
	f.FailNextDials(2)
	for i := 0; i < 2; i++ {
		if _, err := dial(); !errors.Is(err, ErrDialFault) {
			t.Fatalf("dial %d: err = %v, want ErrDialFault", i, err)
		}
	}
	c, err := dial()
	if err != nil {
		t.Fatalf("dial after flaky window: %v", err)
	}
	c.Close()
	st := f.Stats()
	if st.Dials != 3 || st.DialsFailed != 2 {
		t.Fatalf("stats = %+v, want 3 dials / 2 failed", st)
	}
}
