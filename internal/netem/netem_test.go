package netem

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	a, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { a.Close(); r.c.Close() })
	return a, r.c
}

func TestRTTImposed(t *testing.T) {
	a, b := tcpPair(t)
	shaped := Wrap(a, Config{RTT: 40 * time.Millisecond})

	// Echo server on the unshaped side.
	go func() {
		buf := make([]byte, 64)
		for {
			n, err := b.Read(buf)
			if err != nil {
				return
			}
			b.Write(buf[:n])
		}
	}()

	start := time.Now()
	shaped.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(shaped, buf); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 35*time.Millisecond {
		t.Fatalf("round trip %v, want >= ~40ms", rtt)
	}
	if rtt > 120*time.Millisecond {
		t.Fatalf("round trip %v, far above the configured RTT", rtt)
	}
}

func TestZeroConfigPassthrough(t *testing.T) {
	a, _ := tcpPair(t)
	if Wrap(a, Config{}) != a {
		t.Fatal("zero config should return the original conn")
	}
}

func TestDataIntegrityUnderShaping(t *testing.T) {
	a, b := tcpPair(t)
	shaped := Wrap(a, Config{RTT: 4 * time.Millisecond})
	payload := make([]byte, 256*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	go func() {
		shaped.Write(payload)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted by shaping")
	}
}

func TestPipeliningSharesDelay(t *testing.T) {
	// Two writes issued back-to-back must not pay the one-way delay
	// twice: the link buffers in-flight data.
	a, b := tcpPair(t)
	shaped := Wrap(a, Config{RTT: 60 * time.Millisecond})
	go func() {
		shaped.Write([]byte("11111111"))
		shaped.Write([]byte("22222222"))
	}()
	start := time.Now()
	buf := make([]byte, 16)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// One propagation delay (30ms), not two.
	if elapsed > 55*time.Millisecond {
		t.Fatalf("pipelined writes took %v; delay applied serially", elapsed)
	}
}

func TestBandwidthLimit(t *testing.T) {
	a, b := tcpPair(t)
	// 1 MB/s: 256 KB should take ~250ms.
	shaped := Wrap(a, Config{Bandwidth: 1 << 20})
	payload := make([]byte, 256*1024)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		io.ReadFull(b, make([]byte, len(payload)))
	}()
	start := time.Now()
	shaped.Write(payload)
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("256KB at 1MB/s took only %v", elapsed)
	}
}

func TestDialerWrapper(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(c, c)
	}()
	dial := Dialer(func() (net.Conn, error) { return net.Dial("tcp", l.Addr().String()) },
		Config{RTT: 20 * time.Millisecond})
	c, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	c.Write([]byte("x"))
	io.ReadFull(c, make([]byte, 1))
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("echo took %v, want >= ~20ms", d)
	}
}

func TestCloseDrainsInFlight(t *testing.T) {
	a, b := tcpPair(t)
	shaped := Wrap(a, Config{RTT: 30 * time.Millisecond})
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 5)
		io.ReadFull(b, buf)
		done <- buf
	}()
	shaped.Write([]byte("final"))
	shaped.Close() // must not drop the queued write
	select {
	case got := <-done:
		if string(got) != "final" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(time.Second):
		t.Fatal("in-flight write lost at close")
	}
}
