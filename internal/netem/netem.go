// Package netem emulates wide-area network conditions on ordinary
// connections, standing in for the NIST Net router of the paper's
// testbed (§6.1). Wrapping one side of a connection imposes a
// one-way delay of RTT/2 in each direction (so a request/response pair
// experiences the full RTT) and, optionally, a serialization rate
// limit.
package netem

import (
	"net"
	"sync"
	"time"
)

// Config describes the emulated link.
type Config struct {
	// RTT is the round-trip time the link adds. Half is applied to
	// each direction.
	RTT time.Duration
	// Bandwidth, when positive, limits throughput in bytes/second in
	// each direction.
	Bandwidth int64
}

// Wrap imposes the emulated link on c. Both directions are shaped, so
// wrapping one endpoint of a connection suffices. Writes are
// asynchronous (the link buffers in flight data), preserving the
// pipelining behaviour of concurrent RPCs: two requests issued
// back-to-back pay the propagation delay once, not twice.
func Wrap(c net.Conn, cfg Config) net.Conn {
	if cfg.RTT == 0 && cfg.Bandwidth <= 0 {
		return c
	}
	w := &conn{
		Conn:  c,
		delay: cfg.RTT / 2,
		bw:    cfg.Bandwidth,
		in:    newDelayQueue(),
		out:   newDelayQueue(),
	}
	go w.pumpIn()
	go w.pumpOut()
	return w
}

// Dialer shapes every connection produced by dial.
func Dialer(dial func() (net.Conn, error), cfg Config) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		c, err := dial()
		if err != nil {
			return nil, err
		}
		return Wrap(c, cfg), nil
	}
}

// conn shapes both directions through release-time queues.
type conn struct {
	net.Conn
	delay time.Duration
	bw    int64

	in  *delayQueue // underlying -> Read
	out *delayQueue // Write -> underlying

	writeMu     sync.Mutex
	writeCursor time.Time
	readMu      sync.Mutex
	readCursor  time.Time

	closeOnce sync.Once
}

// Write enqueues p for delayed delivery and returns immediately,
// modelling the network buffering bytes in flight.
func (c *conn) Write(p []byte) (int, error) {
	if err := c.out.Err(); err != nil {
		return 0, err
	}
	cp := append([]byte(nil), p...)
	c.writeMu.Lock()
	now := time.Now()
	if c.writeCursor.Before(now) {
		c.writeCursor = now
	}
	if c.bw > 0 {
		c.writeCursor = c.writeCursor.Add(time.Duration(int64(len(p)) * int64(time.Second) / c.bw))
	}
	release := c.writeCursor.Add(c.delay)
	c.writeMu.Unlock()
	c.out.push(cp, release)
	return len(p), nil
}

// pumpOut delivers queued writes to the underlying connection at
// their release times.
func (c *conn) pumpOut() {
	buf := make([]byte, 0, 64*1024)
	for {
		data, err := c.out.pop(buf[:0])
		if err != nil {
			return
		}
		if _, err := c.Conn.Write(data); err != nil {
			c.out.close(err)
			return
		}
	}
}

// pumpIn reads from the underlying connection and releases data to
// Read after the one-way delay.
func (c *conn) pumpIn() {
	for {
		buf := make([]byte, 64*1024)
		n, err := c.Conn.Read(buf)
		now := time.Now()
		c.readMu.Lock()
		if c.readCursor.Before(now) {
			c.readCursor = now
		}
		if c.bw > 0 && n > 0 {
			c.readCursor = c.readCursor.Add(time.Duration(int64(n) * int64(time.Second) / c.bw))
		}
		release := c.readCursor.Add(c.delay)
		c.readMu.Unlock()
		if n > 0 {
			c.in.push(buf[:n], release)
		}
		if err != nil {
			c.in.close(err)
			return
		}
	}
}

// Read returns shaped incoming data.
func (c *conn) Read(p []byte) (int, error) { return c.in.read(p) }

// Close drains in-flight writes, then closes the underlying
// connection.
func (c *conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		c.out.waitEmpty(2 * c.delay)
		err = c.Conn.Close()
	})
	return err
}

// delayQueue is a FIFO of byte chunks with release times.
type delayQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	chunks []chunk
	err    error
}

type chunk struct {
	data    []byte
	release time.Time
}

func newDelayQueue() *delayQueue {
	q := &delayQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *delayQueue) push(data []byte, release time.Time) {
	q.mu.Lock()
	q.chunks = append(q.chunks, chunk{data: data, release: release})
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *delayQueue) close(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Err returns the queue's terminal error, if any.
func (q *delayQueue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// pop removes the next chunk once its release time passes, appending
// it to dst.
func (q *delayQueue) pop(dst []byte) ([]byte, error) {
	q.mu.Lock()
	for {
		if len(q.chunks) > 0 {
			ch := q.chunks[0]
			wait := time.Until(ch.release)
			if wait > 0 {
				q.mu.Unlock()
				time.Sleep(wait)
				q.mu.Lock()
				continue
			}
			q.chunks = q.chunks[1:]
			q.mu.Unlock()
			q.cond.Broadcast() // wake waitEmpty
			return append(dst, ch.data...), nil
		}
		if q.err != nil {
			err := q.err
			q.mu.Unlock()
			return nil, err
		}
		q.cond.Wait()
	}
}

// read copies queued data into p, respecting release times.
func (q *delayQueue) read(p []byte) (int, error) {
	q.mu.Lock()
	for {
		if len(q.chunks) > 0 {
			ch := &q.chunks[0]
			wait := time.Until(ch.release)
			if wait > 0 {
				q.mu.Unlock()
				time.Sleep(wait)
				q.mu.Lock()
				continue
			}
			n := copy(p, ch.data)
			if n == len(ch.data) {
				q.chunks = q.chunks[1:]
			} else {
				ch.data = ch.data[n:]
			}
			q.mu.Unlock()
			q.cond.Broadcast()
			return n, nil
		}
		if q.err != nil {
			err := q.err
			q.mu.Unlock()
			return 0, err
		}
		q.cond.Wait()
	}
}

// waitEmpty blocks until the queue drains or the grace period passes.
func (q *delayQueue) waitEmpty(grace time.Duration) {
	deadline := time.Now().Add(grace + 100*time.Millisecond)
	q.mu.Lock()
	for len(q.chunks) > 0 && q.err == nil && time.Now().Before(deadline) {
		q.mu.Unlock()
		time.Sleep(time.Millisecond)
		q.mu.Lock()
	}
	q.mu.Unlock()
}
