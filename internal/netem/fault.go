package netem

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCut is surfaced by a faulted connection once an injected cut is
// observed (after a reset, or when a stalled connection is finally
// closed).
var ErrCut = errors.New("netem: connection cut by fault injection")

// ErrDialFault is returned by a faulted dialer when a dial failure is
// injected (reconnect flakiness).
var ErrDialFault = errors.New("netem: dial failed by fault injection")

// FaultMode selects how an injected cut manifests to the endpoints.
type FaultMode int

const (
	// FaultReset severs the connection immediately: both peers observe
	// a prompt read/write error, like a TCP RST.
	FaultReset FaultMode = iota
	// FaultStall freezes the connection silently: no more bytes are
	// delivered in either direction and no error is reported, like a
	// routing black hole. Only deadlines (or closing the connection)
	// get a caller out.
	FaultStall
)

// FaultPlan arms automatic cuts on every subsequently created
// connection. The zero plan injects nothing.
type FaultPlan struct {
	// CutAfterBytes cuts the connection once the total bytes moved
	// through it (both directions) reach this offset. 0 disables.
	CutAfterBytes int64
	// CutAfter cuts the connection this long after establishment.
	// 0 disables.
	CutAfter time.Duration
	// Mode is how the scheduled cut manifests.
	Mode FaultMode
}

// FaultStats counts injected events.
type FaultStats struct {
	Dials       uint64 // dials attempted through the faulter
	DialsFailed uint64 // dials refused by injection
	Cuts        uint64 // connection cuts injected
	Live        int    // currently tracked connections
}

// Faulter injects link failures into connections and dialers: byte- or
// time-offset cuts, immediate kills of every live connection, reset vs
// silent-stall failure modes, and dial flakiness for reconnect paths.
// It drives the chaos tests that kill the WAN link mid-workload. A
// Faulter is safe for concurrent use.
type Faulter struct {
	mu       sync.Mutex
	plan     FaultPlan
	failNext int
	conns    map[*faultConn]struct{}

	dials       atomic.Uint64
	dialsFailed atomic.Uint64
	cuts        atomic.Uint64
}

// NewFaulter returns a Faulter with no scheduled faults.
func NewFaulter() *Faulter {
	return &Faulter{conns: make(map[*faultConn]struct{})}
}

// SetPlan arms plan on connections created from now on. Existing
// connections are unaffected (use CutAll for those).
func (f *Faulter) SetPlan(p FaultPlan) {
	f.mu.Lock()
	f.plan = p
	f.mu.Unlock()
}

// FailNextDials makes the next n dials through Dialer fail with
// ErrDialFault, emulating a flaky path during reconnection.
func (f *Faulter) FailNextDials(n int) {
	f.mu.Lock()
	f.failNext = n
	f.mu.Unlock()
}

// Dialer wraps dial so every produced connection is tracked and
// subject to the armed fault plan, and dial failures can be injected.
func (f *Faulter) Dialer(dial func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		f.dials.Add(1)
		f.mu.Lock()
		if f.failNext > 0 {
			f.failNext--
			f.mu.Unlock()
			f.dialsFailed.Add(1)
			return nil, ErrDialFault
		}
		f.mu.Unlock()
		c, err := dial()
		if err != nil {
			return nil, err
		}
		return f.Wrap(c), nil
	}
}

// Wrap tracks c and arms the current fault plan on it.
func (f *Faulter) Wrap(c net.Conn) net.Conn {
	f.mu.Lock()
	plan := f.plan
	fc := &faultConn{
		Conn:    c,
		f:       f,
		mode:    plan.Mode,
		cutAt:   plan.CutAfterBytes,
		stalled: make(chan struct{}),
		dead:    make(chan struct{}),
	}
	f.conns[fc] = struct{}{}
	f.mu.Unlock()
	if plan.CutAfter > 0 {
		fc.timer = time.AfterFunc(plan.CutAfter, func() { fc.trip(plan.Mode) })
	}
	return fc
}

// CutAll severs every live tracked connection now, in the given mode.
func (f *Faulter) CutAll(mode FaultMode) {
	f.mu.Lock()
	live := make([]*faultConn, 0, len(f.conns))
	for fc := range f.conns {
		live = append(live, fc)
	}
	f.mu.Unlock()
	for _, fc := range live {
		fc.trip(mode)
	}
}

// Stats returns a snapshot of injected-event counters.
func (f *Faulter) Stats() FaultStats {
	f.mu.Lock()
	live := len(f.conns)
	f.mu.Unlock()
	return FaultStats{
		Dials:       f.dials.Load(),
		DialsFailed: f.dialsFailed.Load(),
		Cuts:        f.cuts.Load(),
		Live:        live,
	}
}

func (f *Faulter) forget(fc *faultConn) {
	f.mu.Lock()
	delete(f.conns, fc)
	f.mu.Unlock()
}

// faultConn interposes on a connection to observe traffic and enact
// cuts.
type faultConn struct {
	net.Conn
	f     *Faulter
	mode  FaultMode
	cutAt int64 // byte offset to cut at (0 = off)
	timer *time.Timer

	bytes atomic.Int64

	stallOnce sync.Once
	stalled   chan struct{} // closed when a stall cut trips
	closeOnce sync.Once
	dead      chan struct{} // closed on Close
}

// trip enacts a cut on the connection in the given mode.
func (c *faultConn) trip(mode FaultMode) {
	switch mode {
	case FaultStall:
		c.stallOnce.Do(func() {
			c.f.cuts.Add(1)
			close(c.stalled)
		})
	default: // FaultReset
		select {
		case <-c.dead:
			return // already closed; not a new cut
		default:
		}
		c.f.cuts.Add(1)
		c.Conn.Close()
	}
}

// account adds transferred bytes and trips the byte-offset cut when
// crossed.
func (c *faultConn) account(n int64) {
	if n <= 0 {
		return
	}
	total := c.bytes.Add(n)
	if c.cutAt > 0 && total >= c.cutAt && total-n < c.cutAt {
		c.trip(c.mode)
	}
}

// blackhole blocks until the connection is closed, then reports the
// cut. Used once a stall has tripped: a stalled link delivers nothing
// and errors nothing.
func (c *faultConn) blackhole() (int, error) {
	<-c.dead
	return 0, ErrCut
}

func (c *faultConn) Read(p []byte) (int, error) {
	select {
	case <-c.stalled:
		return c.blackhole()
	default:
	}
	n, err := c.Conn.Read(p)
	select {
	case <-c.stalled:
		// The stall tripped while we were blocked in Read: swallow
		// whatever arrived — a black hole delivers nothing.
		return c.blackhole()
	default:
	}
	c.account(int64(n))
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	select {
	case <-c.stalled:
		return c.blackhole()
	default:
	}
	n, err := c.Conn.Write(p)
	select {
	case <-c.stalled:
		return c.blackhole()
	default:
	}
	c.account(int64(n))
	return n, err
}

func (c *faultConn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		if c.timer != nil {
			c.timer.Stop()
		}
		close(c.dead)
		err = c.Conn.Close()
		c.f.forget(c)
	})
	return err
}
