package idmap

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTable(t *testing.T) {
	tab := NewTable()
	tab.Add(Account{Name: "alice", UID: 5001, GID: 500, GIDs: []uint32{500, 1000}})
	a, ok := tab.Lookup("alice")
	if !ok || a.UID != 5001 || a.GID != 500 {
		t.Fatalf("lookup: %+v %v", a, ok)
	}
	if _, ok := tab.Lookup("ghost"); ok {
		t.Fatal("ghost account found")
	}
	if _, err := tab.MustLookup("ghost"); err == nil {
		t.Fatal("MustLookup(ghost) succeeded")
	}
	// The anonymous account is pre-registered.
	nobody, ok := tab.Lookup("nobody")
	if !ok || nobody.UID != 65534 {
		t.Fatalf("nobody: %+v %v", nobody, ok)
	}
}

func TestOverwrite(t *testing.T) {
	tab := NewTable()
	tab.Add(Account{Name: "u", UID: 1})
	tab.Add(Account{Name: "u", UID: 2})
	a, _ := tab.Lookup("u")
	if a.UID != 2 {
		t.Fatal("overwrite failed")
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "accounts")
	content := `
# local accounts for the SGFS export
alice 5001 500
bob   5002 500 1000 2000
`
	if err := os.WriteFile(path, []byte(content), 0644); err != nil {
		t.Fatal(err)
	}
	tab, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := tab.Lookup("alice")
	if !ok || a.UID != 5001 || a.GID != 500 || len(a.GIDs) != 0 {
		t.Fatalf("alice: %+v %v", a, ok)
	}
	b, ok := tab.Lookup("bob")
	if !ok || b.UID != 5002 || len(b.GIDs) != 2 || b.GIDs[1] != 2000 {
		t.Fatalf("bob: %+v %v", b, ok)
	}
	// The anonymous account survives loading.
	if _, ok := tab.Lookup("nobody"); !ok {
		t.Fatal("nobody missing after load")
	}
}

func TestLoadFileErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"short.acct":  "alice 5001\n",       // missing gid
		"nonnum.acct": "alice five hundred", // non-numeric
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		os.WriteFile(p, []byte(content), 0644)
		if _, err := LoadFile(p); err == nil {
			t.Errorf("%s: accepted bad accounts file", name)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestAll(t *testing.T) {
	tab := NewTable()
	tab.Add(Account{Name: "x", UID: 1, GID: 1})
	tab.Add(Account{Name: "y", UID: 2, GID: 2})
	if got := len(tab.All()); got != 3 { // x, y, nobody
		t.Fatalf("All returned %d accounts", got)
	}
}
