// Package idmap implements the identity mapping the SGFS server-side
// proxy applies to authorized requests (§4.3): the UNIX credentials in
// each forwarded NFS RPC are replaced with the credentials of the
// local account the grid user maps to, so the kernel NFS server grants
// access as that account. Client-side UIDs never cross the trust
// boundary unmapped.
package idmap

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Account is a local account on the file server.
type Account struct {
	Name string
	UID  uint32
	GID  uint32
	// GIDs are supplementary groups.
	GIDs []uint32
}

// Table is the registry of local accounts, keyed by name. It is safe
// for concurrent use.
type Table struct {
	mu       sync.RWMutex
	accounts map[string]Account
}

// NewTable creates a table pre-populated with the anonymous account
// (uid/gid 65534, the classic "nobody").
func NewTable() *Table {
	t := &Table{accounts: make(map[string]Account)}
	t.Add(Account{Name: "nobody", UID: 65534, GID: 65534})
	return t
}

// Add registers an account.
func (t *Table) Add(a Account) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.accounts[a.Name] = a
}

// Lookup finds an account by name.
func (t *Table) Lookup(name string) (Account, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a, ok := t.accounts[name]
	return a, ok
}

// All returns a copy of every registered account.
func (t *Table) All() []Account {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Account, 0, len(t.accounts))
	for _, a := range t.accounts {
		out = append(out, a)
	}
	return out
}

// LoadFile reads an accounts table: one account per line in the form
// "name uid gid [gid...]", with #-comments and blank lines ignored.
func LoadFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t := NewTable()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("idmap: %s:%d: expected name uid gid", path, lineNo)
		}
		a := Account{Name: fields[0]}
		ids := make([]uint32, 0, len(fields)-1)
		for _, fld := range fields[1:] {
			v, err := strconv.ParseUint(fld, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("idmap: %s:%d: bad id %q", path, lineNo, fld)
			}
			ids = append(ids, uint32(v))
		}
		a.UID, a.GID = ids[0], ids[1]
		a.GIDs = ids[2:]
		t.Add(a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustLookup finds an account or returns an error naming it.
func (t *Table) MustLookup(name string) (Account, error) {
	if a, ok := t.Lookup(name); ok {
		return a, nil
	}
	return Account{}, fmt.Errorf("idmap: no local account %q", name)
}
