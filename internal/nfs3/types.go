// Package nfs3 implements the NFS version 3 protocol (RFC 1813): the
// XDR wire types for all 21 procedures plus NULL, and a server that
// executes them against a vfs.FS backend. Together with the MOUNT
// protocol (internal/mountd) and the client (internal/nfsclient) it
// forms the unmodified-NFS substrate that the SGFS proxies virtualize.
package nfs3

import (
	"time"

	"repro/internal/vfs"
	"repro/internal/xdr"
)

// ONC RPC program numbers and versions.
const (
	Program = 100003
	Version = 3
)

// NFSv3 procedure numbers.
const (
	ProcNull        = 0
	ProcGetAttr     = 1
	ProcSetAttr     = 2
	ProcLookup      = 3
	ProcAccess      = 4
	ProcReadLink    = 5
	ProcRead        = 6
	ProcWrite       = 7
	ProcCreate      = 8
	ProcMkdir       = 9
	ProcSymlink     = 10
	ProcMknod       = 11
	ProcRemove      = 12
	ProcRmdir       = 13
	ProcRename      = 14
	ProcLink        = 15
	ProcReadDir     = 16
	ProcReadDirPlus = 17
	ProcFSStat      = 18
	ProcFSInfo      = 19
	ProcPathConf    = 20
	ProcCommit      = 21
)

// procNames maps procedure numbers to their RFC 1813 names for error
// messages and logs.
var procNames = map[uint32]string{
	ProcNull:        "NULL",
	ProcGetAttr:     "GETATTR",
	ProcSetAttr:     "SETATTR",
	ProcLookup:      "LOOKUP",
	ProcAccess:      "ACCESS",
	ProcReadLink:    "READLINK",
	ProcRead:        "READ",
	ProcWrite:       "WRITE",
	ProcCreate:      "CREATE",
	ProcMkdir:       "MKDIR",
	ProcSymlink:     "SYMLINK",
	ProcMknod:       "MKNOD",
	ProcRemove:      "REMOVE",
	ProcRmdir:       "RMDIR",
	ProcRename:      "RENAME",
	ProcLink:        "LINK",
	ProcReadDir:     "READDIR",
	ProcReadDirPlus: "READDIRPLUS",
	ProcFSStat:      "FSSTAT",
	ProcFSInfo:      "FSINFO",
	ProcPathConf:    "PATHCONF",
	ProcCommit:      "COMMIT",
}

// ProcName returns the RFC 1813 name of an NFSv3 procedure number, or
// "" for numbers outside the protocol.
func ProcName(proc uint32) string { return procNames[proc] }

// Status is the nfsstat3 result code. The values coincide with
// vfs.Errno so backend errors pass through unchanged.
type Status uint32

// OK indicates success; error values mirror vfs.Errno.
const OK Status = 0

// StatusFromError maps a backend error to an NFS status.
func StatusFromError(err error) Status {
	if err == nil {
		return OK
	}
	if e, ok := err.(vfs.Errno); ok {
		return Status(e)
	}
	return Status(vfs.ErrServerFault)
}

// Error converts a status to a backend error (nil for OK).
func (s Status) Error() error {
	if s == OK {
		return nil
	}
	return vfs.Errno(s)
}

// FHSize is the maximum file handle length (RFC 1813).
const FHSize = 64

// FH3 is an NFSv3 file handle.
type FH3 struct{ Data []byte }

// FromHandle converts a vfs handle.
func FromHandle(h vfs.Handle) FH3 { return FH3{Data: append([]byte(nil), h[:]...)} }

// Handle converts to a vfs handle; short handles are zero-padded and
// long ones rejected by the caller via Valid.
func (f FH3) Handle() vfs.Handle {
	var h vfs.Handle
	copy(h[:], f.Data)
	return h
}

// Valid reports whether the handle has a legal length.
func (f FH3) Valid() bool { return len(f.Data) > 0 && len(f.Data) <= FHSize }

// EncodeXDR implements xdr.Marshaler.
func (f *FH3) EncodeXDR(e *xdr.Encoder) { e.Opaque(f.Data) }

// DecodeXDR implements xdr.Unmarshaler.
func (f *FH3) DecodeXDR(d *xdr.Decoder) { f.Data = d.Opaque() }

// NFSTime is the nfstime3 structure.
type NFSTime struct{ Sec, NSec uint32 }

// TimeToNFS converts a time.Time.
func TimeToNFS(t time.Time) NFSTime {
	return NFSTime{Sec: uint32(t.Unix()), NSec: uint32(t.Nanosecond())}
}

// Time converts to time.Time.
func (t NFSTime) Time() time.Time { return time.Unix(int64(t.Sec), int64(t.NSec)) }

func (t *NFSTime) enc(e *xdr.Encoder) { e.Uint32(t.Sec); e.Uint32(t.NSec) }
func (t *NFSTime) dec(d *xdr.Decoder) { t.Sec = d.Uint32(); t.NSec = d.Uint32() }

// Fattr3 is the fattr3 attribute structure.
type Fattr3 struct {
	Type                uint32
	Mode                uint32
	Nlink               uint32
	UID, GID            uint32
	Size, Used          uint64
	RdevMaj, RdevMin    uint32
	FSID                uint64
	FileID              uint64
	Atime, Mtime, Ctime NFSTime
}

// FromAttr converts vfs attributes.
func FromAttr(a vfs.Attr, fsid uint64) Fattr3 {
	return Fattr3{
		Type: uint32(a.Type), Mode: a.Mode, Nlink: a.Nlink,
		UID: a.UID, GID: a.GID, Size: a.Size, Used: a.Used,
		FSID: fsid, FileID: a.FileID,
		Atime: TimeToNFS(a.Atime), Mtime: TimeToNFS(a.Mtime), Ctime: TimeToNFS(a.Ctime),
	}
}

// Attr converts to vfs attributes.
func (f Fattr3) Attr() vfs.Attr {
	return vfs.Attr{
		Type: vfs.FileType(f.Type), Mode: f.Mode, Nlink: f.Nlink,
		UID: f.UID, GID: f.GID, Size: f.Size, Used: f.Used, FileID: f.FileID,
		Atime: f.Atime.Time(), Mtime: f.Mtime.Time(), Ctime: f.Ctime.Time(),
	}
}

// EncodeXDR implements xdr.Marshaler.
func (f *Fattr3) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(f.Type)
	e.Uint32(f.Mode)
	e.Uint32(f.Nlink)
	e.Uint32(f.UID)
	e.Uint32(f.GID)
	e.Uint64(f.Size)
	e.Uint64(f.Used)
	e.Uint32(f.RdevMaj)
	e.Uint32(f.RdevMin)
	e.Uint64(f.FSID)
	e.Uint64(f.FileID)
	f.Atime.enc(e)
	f.Mtime.enc(e)
	f.Ctime.enc(e)
}

// DecodeXDR implements xdr.Unmarshaler.
func (f *Fattr3) DecodeXDR(d *xdr.Decoder) {
	f.Type = d.Uint32()
	f.Mode = d.Uint32()
	f.Nlink = d.Uint32()
	f.UID = d.Uint32()
	f.GID = d.Uint32()
	f.Size = d.Uint64()
	f.Used = d.Uint64()
	f.RdevMaj = d.Uint32()
	f.RdevMin = d.Uint32()
	f.FSID = d.Uint64()
	f.FileID = d.Uint64()
	f.Atime.dec(d)
	f.Mtime.dec(d)
	f.Ctime.dec(d)
}

// PostOpAttr is the post_op_attr optional attribute.
type PostOpAttr struct {
	Present bool
	Attr    Fattr3
}

// EncodeXDR implements xdr.Marshaler.
func (p *PostOpAttr) EncodeXDR(e *xdr.Encoder) {
	e.OptionalBegin(p.Present)
	if p.Present {
		p.Attr.EncodeXDR(e)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (p *PostOpAttr) DecodeXDR(d *xdr.Decoder) {
	p.Present = d.OptionalPresent()
	if p.Present {
		p.Attr.DecodeXDR(d)
	}
}

// WccAttr is the abbreviated pre-operation attribute set.
type WccAttr struct {
	Size         uint64
	Mtime, Ctime NFSTime
}

// PreOpAttr is the pre_op_attr optional attribute.
type PreOpAttr struct {
	Present bool
	Attr    WccAttr
}

// EncodeXDR implements xdr.Marshaler.
func (p *PreOpAttr) EncodeXDR(e *xdr.Encoder) {
	e.OptionalBegin(p.Present)
	if p.Present {
		e.Uint64(p.Attr.Size)
		p.Attr.Mtime.enc(e)
		p.Attr.Ctime.enc(e)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (p *PreOpAttr) DecodeXDR(d *xdr.Decoder) {
	p.Present = d.OptionalPresent()
	if p.Present {
		p.Attr.Size = d.Uint64()
		p.Attr.Mtime.dec(d)
		p.Attr.Ctime.dec(d)
	}
}

// WccData is weak cache consistency data.
type WccData struct {
	Before PreOpAttr
	After  PostOpAttr
}

// EncodeXDR implements xdr.Marshaler.
func (w *WccData) EncodeXDR(e *xdr.Encoder) { w.Before.EncodeXDR(e); w.After.EncodeXDR(e) }

// DecodeXDR implements xdr.Unmarshaler.
func (w *WccData) DecodeXDR(d *xdr.Decoder) { w.Before.DecodeXDR(d); w.After.DecodeXDR(d) }

// PostOpFH3 is an optional file handle.
type PostOpFH3 struct {
	Present bool
	FH      FH3
}

// EncodeXDR implements xdr.Marshaler.
func (p *PostOpFH3) EncodeXDR(e *xdr.Encoder) {
	e.OptionalBegin(p.Present)
	if p.Present {
		p.FH.EncodeXDR(e)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (p *PostOpFH3) DecodeXDR(d *xdr.Decoder) {
	p.Present = d.OptionalPresent()
	if p.Present {
		p.FH.DecodeXDR(d)
	}
}

// Time-setting discriminants for Sattr3.
const (
	DontChange      = 0
	SetToServerTime = 1
	SetToClientTime = 2
)

// Sattr3 is the settable-attributes structure.
type Sattr3 struct {
	SetMode bool
	Mode    uint32
	SetUID  bool
	UID     uint32
	SetGID  bool
	GID     uint32
	SetSize bool
	Size    uint64
	// AtimeHow / MtimeHow take the DontChange / SetToServerTime /
	// SetToClientTime discriminants.
	AtimeHow uint32
	Atime    NFSTime
	MtimeHow uint32
	Mtime    NFSTime
}

// EncodeXDR implements xdr.Marshaler.
func (s *Sattr3) EncodeXDR(e *xdr.Encoder) {
	e.OptionalBegin(s.SetMode)
	if s.SetMode {
		e.Uint32(s.Mode)
	}
	e.OptionalBegin(s.SetUID)
	if s.SetUID {
		e.Uint32(s.UID)
	}
	e.OptionalBegin(s.SetGID)
	if s.SetGID {
		e.Uint32(s.GID)
	}
	e.OptionalBegin(s.SetSize)
	if s.SetSize {
		e.Uint64(s.Size)
	}
	e.Uint32(s.AtimeHow)
	if s.AtimeHow == SetToClientTime {
		s.Atime.enc(e)
	}
	e.Uint32(s.MtimeHow)
	if s.MtimeHow == SetToClientTime {
		s.Mtime.enc(e)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (s *Sattr3) DecodeXDR(d *xdr.Decoder) {
	if s.SetMode = d.OptionalPresent(); s.SetMode {
		s.Mode = d.Uint32()
	}
	if s.SetUID = d.OptionalPresent(); s.SetUID {
		s.UID = d.Uint32()
	}
	if s.SetGID = d.OptionalPresent(); s.SetGID {
		s.GID = d.Uint32()
	}
	if s.SetSize = d.OptionalPresent(); s.SetSize {
		s.Size = d.Uint64()
	}
	s.AtimeHow = d.Uint32()
	if s.AtimeHow == SetToClientTime {
		s.Atime.dec(d)
	}
	s.MtimeHow = d.Uint32()
	if s.MtimeHow == SetToClientTime {
		s.Mtime.dec(d)
	}
}

// SetAttr converts to the vfs update form.
func (s *Sattr3) SetAttr() vfs.SetAttr {
	var out vfs.SetAttr
	if s.SetMode {
		m := s.Mode
		out.Mode = &m
	}
	if s.SetUID {
		u := s.UID
		out.UID = &u
	}
	if s.SetGID {
		g := s.GID
		out.GID = &g
	}
	if s.SetSize {
		sz := s.Size
		out.Size = &sz
	}
	now := time.Now()
	switch s.AtimeHow {
	case SetToServerTime:
		out.Atime = &now
	case SetToClientTime:
		at := s.Atime.Time()
		out.Atime = &at
	}
	switch s.MtimeHow {
	case SetToServerTime:
		out.Mtime = &now
	case SetToClientTime:
		mt := s.Mtime.Time()
		out.Mtime = &mt
	}
	return out
}

// DirOpArgs names an object within a directory.
type DirOpArgs struct {
	Dir  FH3
	Name string
}

// EncodeXDR implements xdr.Marshaler.
func (a *DirOpArgs) EncodeXDR(e *xdr.Encoder) { a.Dir.EncodeXDR(e); e.String(a.Name) }

// DecodeXDR implements xdr.Unmarshaler.
func (a *DirOpArgs) DecodeXDR(d *xdr.Decoder) { a.Dir.DecodeXDR(d); a.Name = d.String() }
