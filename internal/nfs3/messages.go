package nfs3

import (
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// Write stability levels (stable_how).
const (
	Unstable = 0
	DataSync = 1
	FileSync = 2
)

// Create modes (createmode3).
const (
	CreateUnchecked = 0
	CreateGuarded   = 1
	CreateExclusive = 2
)

// WriteVerfSize is the size of write and cookie verifiers.
const WriteVerfSize = 8

// GetAttrArgs is GETATTR3args.
type GetAttrArgs struct{ Obj FH3 }

// EncodeXDR implements xdr.Marshaler.
func (a *GetAttrArgs) EncodeXDR(e *xdr.Encoder) { a.Obj.EncodeXDR(e) }

// DecodeXDR implements xdr.Unmarshaler.
func (a *GetAttrArgs) DecodeXDR(d *xdr.Decoder) { a.Obj.DecodeXDR(d) }

// GetAttrRes is GETATTR3res.
type GetAttrRes struct {
	Status Status
	Attr   Fattr3
}

// EncodeXDR implements xdr.Marshaler.
func (r *GetAttrRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		r.Attr.EncodeXDR(e)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *GetAttrRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	if r.Status == OK {
		r.Attr.DecodeXDR(d)
	}
}

// SetAttrArgs is SETATTR3args.
type SetAttrArgs struct {
	Obj        FH3
	Attr       Sattr3
	GuardCheck bool
	GuardCtime NFSTime
}

// EncodeXDR implements xdr.Marshaler.
func (a *SetAttrArgs) EncodeXDR(e *xdr.Encoder) {
	a.Obj.EncodeXDR(e)
	a.Attr.EncodeXDR(e)
	e.OptionalBegin(a.GuardCheck)
	if a.GuardCheck {
		a.GuardCtime.enc(e)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (a *SetAttrArgs) DecodeXDR(d *xdr.Decoder) {
	a.Obj.DecodeXDR(d)
	a.Attr.DecodeXDR(d)
	if a.GuardCheck = d.OptionalPresent(); a.GuardCheck {
		a.GuardCtime.dec(d)
	}
}

// WccRes is the common {status, wcc_data} result (SETATTR, REMOVE,
// RMDIR).
type WccRes struct {
	Status Status
	Wcc    WccData
}

// EncodeXDR implements xdr.Marshaler.
func (r *WccRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Wcc.EncodeXDR(e)
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *WccRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.Wcc.DecodeXDR(d)
}

// LookupArgs is LOOKUP3args.
type LookupArgs struct{ What DirOpArgs }

// EncodeXDR implements xdr.Marshaler.
func (a *LookupArgs) EncodeXDR(e *xdr.Encoder) { a.What.EncodeXDR(e) }

// DecodeXDR implements xdr.Unmarshaler.
func (a *LookupArgs) DecodeXDR(d *xdr.Decoder) { a.What.DecodeXDR(d) }

// LookupRes is LOOKUP3res.
type LookupRes struct {
	Status  Status
	Obj     FH3
	Attr    PostOpAttr
	DirAttr PostOpAttr
}

// EncodeXDR implements xdr.Marshaler.
func (r *LookupRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		r.Obj.EncodeXDR(e)
		r.Attr.EncodeXDR(e)
	}
	r.DirAttr.EncodeXDR(e)
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *LookupRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	if r.Status == OK {
		r.Obj.DecodeXDR(d)
		r.Attr.DecodeXDR(d)
	}
	r.DirAttr.DecodeXDR(d)
}

// AccessArgs is ACCESS3args.
type AccessArgs struct {
	Obj    FH3
	Access uint32
}

// EncodeXDR implements xdr.Marshaler.
func (a *AccessArgs) EncodeXDR(e *xdr.Encoder) { a.Obj.EncodeXDR(e); e.Uint32(a.Access) }

// DecodeXDR implements xdr.Unmarshaler.
func (a *AccessArgs) DecodeXDR(d *xdr.Decoder) { a.Obj.DecodeXDR(d); a.Access = d.Uint32() }

// AccessRes is ACCESS3res.
type AccessRes struct {
	Status Status
	Attr   PostOpAttr
	Access uint32
}

// EncodeXDR implements xdr.Marshaler.
func (r *AccessRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.EncodeXDR(e)
	if r.Status == OK {
		e.Uint32(r.Access)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *AccessRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.Attr.DecodeXDR(d)
	if r.Status == OK {
		r.Access = d.Uint32()
	}
}

// ReadLinkArgs is READLINK3args.
type ReadLinkArgs struct{ Obj FH3 }

// EncodeXDR implements xdr.Marshaler.
func (a *ReadLinkArgs) EncodeXDR(e *xdr.Encoder) { a.Obj.EncodeXDR(e) }

// DecodeXDR implements xdr.Unmarshaler.
func (a *ReadLinkArgs) DecodeXDR(d *xdr.Decoder) { a.Obj.DecodeXDR(d) }

// ReadLinkRes is READLINK3res.
type ReadLinkRes struct {
	Status Status
	Attr   PostOpAttr
	Target string
}

// EncodeXDR implements xdr.Marshaler.
func (r *ReadLinkRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.EncodeXDR(e)
	if r.Status == OK {
		e.String(r.Target)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *ReadLinkRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.Attr.DecodeXDR(d)
	if r.Status == OK {
		r.Target = d.String()
	}
}

// ReadArgs is READ3args.
type ReadArgs struct {
	Obj    FH3
	Offset uint64
	Count  uint32
}

// EncodeXDR implements xdr.Marshaler.
func (a *ReadArgs) EncodeXDR(e *xdr.Encoder) {
	a.Obj.EncodeXDR(e)
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
}

// DecodeXDR implements xdr.Unmarshaler.
func (a *ReadArgs) DecodeXDR(d *xdr.Decoder) {
	a.Obj.DecodeXDR(d)
	a.Offset = d.Uint64()
	a.Count = d.Uint32()
}

// ReadRes is READ3res.
type ReadRes struct {
	Status Status
	Attr   PostOpAttr
	Count  uint32
	EOF    bool
	Data   []byte
}

// EncodeXDR implements xdr.Marshaler.
func (r *ReadRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.EncodeXDR(e)
	if r.Status == OK {
		e.Uint32(r.Count)
		e.Bool(r.EOF)
		e.Opaque(r.Data)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *ReadRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.Attr.DecodeXDR(d)
	if r.Status == OK {
		r.Count = d.Uint32()
		r.EOF = d.Bool()
		r.Data = d.Opaque()
	}
}

// WriteArgs is WRITE3args.
type WriteArgs struct {
	Obj    FH3
	Offset uint64
	Count  uint32
	Stable uint32
	Data   []byte
}

// EncodeXDR implements xdr.Marshaler.
func (a *WriteArgs) EncodeXDR(e *xdr.Encoder) {
	a.Obj.EncodeXDR(e)
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
	e.Uint32(a.Stable)
	e.Opaque(a.Data)
}

// DecodeXDR implements xdr.Unmarshaler.
func (a *WriteArgs) DecodeXDR(d *xdr.Decoder) {
	a.Obj.DecodeXDR(d)
	a.Offset = d.Uint64()
	a.Count = d.Uint32()
	if a.Count > PreferredIO {
		// The server advertises wtmax = PreferredIO in FSINFO; a count
		// beyond it is a protocol violation, and rejecting it here
		// keeps the opaque that follows from allocating up to the
		// XDR-level 64 MiB ceiling.
		d.SetErr(vfs.ErrInval)
		return
	}
	a.Stable = d.Uint32()
	a.Data = d.BoundedOpaque(PreferredIO)
}

// WriteRes is WRITE3res.
type WriteRes struct {
	Status    Status
	Wcc       WccData
	Count     uint32
	Committed uint32
	Verf      [WriteVerfSize]byte
}

// EncodeXDR implements xdr.Marshaler.
func (r *WriteRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Wcc.EncodeXDR(e)
	if r.Status == OK {
		e.Uint32(r.Count)
		e.Uint32(r.Committed)
		e.FixedOpaque(r.Verf[:])
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *WriteRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.Wcc.DecodeXDR(d)
	if r.Status == OK {
		r.Count = d.Uint32()
		r.Committed = d.Uint32()
		d.FixedOpaque(r.Verf[:])
	}
}

// CreateArgs is CREATE3args.
type CreateArgs struct {
	Where DirOpArgs
	Mode  uint32 // createmode3
	Attr  Sattr3
	Verf  [WriteVerfSize]byte // exclusive create verifier
}

// EncodeXDR implements xdr.Marshaler.
func (a *CreateArgs) EncodeXDR(e *xdr.Encoder) {
	a.Where.EncodeXDR(e)
	e.Uint32(a.Mode)
	if a.Mode == CreateExclusive {
		e.FixedOpaque(a.Verf[:])
	} else {
		a.Attr.EncodeXDR(e)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (a *CreateArgs) DecodeXDR(d *xdr.Decoder) {
	a.Where.DecodeXDR(d)
	a.Mode = d.Uint32()
	if a.Mode == CreateExclusive {
		d.FixedOpaque(a.Verf[:])
	} else {
		a.Attr.DecodeXDR(d)
	}
}

// CreateRes is CREATE3res, shared by MKDIR and SYMLINK.
type CreateRes struct {
	Status Status
	Obj    PostOpFH3
	Attr   PostOpAttr
	DirWcc WccData
}

// EncodeXDR implements xdr.Marshaler.
func (r *CreateRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		r.Obj.EncodeXDR(e)
		r.Attr.EncodeXDR(e)
	}
	r.DirWcc.EncodeXDR(e)
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *CreateRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	if r.Status == OK {
		r.Obj.DecodeXDR(d)
		r.Attr.DecodeXDR(d)
	}
	r.DirWcc.DecodeXDR(d)
}

// MkdirArgs is MKDIR3args.
type MkdirArgs struct {
	Where DirOpArgs
	Attr  Sattr3
}

// EncodeXDR implements xdr.Marshaler.
func (a *MkdirArgs) EncodeXDR(e *xdr.Encoder) { a.Where.EncodeXDR(e); a.Attr.EncodeXDR(e) }

// DecodeXDR implements xdr.Unmarshaler.
func (a *MkdirArgs) DecodeXDR(d *xdr.Decoder) { a.Where.DecodeXDR(d); a.Attr.DecodeXDR(d) }

// SymlinkArgs is SYMLINK3args.
type SymlinkArgs struct {
	Where  DirOpArgs
	Attr   Sattr3
	Target string
}

// EncodeXDR implements xdr.Marshaler.
func (a *SymlinkArgs) EncodeXDR(e *xdr.Encoder) {
	a.Where.EncodeXDR(e)
	a.Attr.EncodeXDR(e)
	e.String(a.Target)
}

// DecodeXDR implements xdr.Unmarshaler.
func (a *SymlinkArgs) DecodeXDR(d *xdr.Decoder) {
	a.Where.DecodeXDR(d)
	a.Attr.DecodeXDR(d)
	a.Target = d.String()
}

// RemoveArgs is REMOVE3args / RMDIR3args.
type RemoveArgs struct{ Obj DirOpArgs }

// EncodeXDR implements xdr.Marshaler.
func (a *RemoveArgs) EncodeXDR(e *xdr.Encoder) { a.Obj.EncodeXDR(e) }

// DecodeXDR implements xdr.Unmarshaler.
func (a *RemoveArgs) DecodeXDR(d *xdr.Decoder) { a.Obj.DecodeXDR(d) }

// RenameArgs is RENAME3args.
type RenameArgs struct {
	From DirOpArgs
	To   DirOpArgs
}

// EncodeXDR implements xdr.Marshaler.
func (a *RenameArgs) EncodeXDR(e *xdr.Encoder) { a.From.EncodeXDR(e); a.To.EncodeXDR(e) }

// DecodeXDR implements xdr.Unmarshaler.
func (a *RenameArgs) DecodeXDR(d *xdr.Decoder) { a.From.DecodeXDR(d); a.To.DecodeXDR(d) }

// RenameRes is RENAME3res.
type RenameRes struct {
	Status  Status
	FromWcc WccData
	ToWcc   WccData
}

// EncodeXDR implements xdr.Marshaler.
func (r *RenameRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.FromWcc.EncodeXDR(e)
	r.ToWcc.EncodeXDR(e)
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *RenameRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.FromWcc.DecodeXDR(d)
	r.ToWcc.DecodeXDR(d)
}

// LinkArgs is LINK3args.
type LinkArgs struct {
	Obj  FH3
	Link DirOpArgs
}

// EncodeXDR implements xdr.Marshaler.
func (a *LinkArgs) EncodeXDR(e *xdr.Encoder) { a.Obj.EncodeXDR(e); a.Link.EncodeXDR(e) }

// DecodeXDR implements xdr.Unmarshaler.
func (a *LinkArgs) DecodeXDR(d *xdr.Decoder) { a.Obj.DecodeXDR(d); a.Link.DecodeXDR(d) }

// LinkRes is LINK3res.
type LinkRes struct {
	Status  Status
	Attr    PostOpAttr
	LinkWcc WccData
}

// EncodeXDR implements xdr.Marshaler.
func (r *LinkRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.EncodeXDR(e)
	r.LinkWcc.EncodeXDR(e)
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *LinkRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.Attr.DecodeXDR(d)
	r.LinkWcc.DecodeXDR(d)
}

// ReadDirArgs is READDIR3args.
type ReadDirArgs struct {
	Dir        FH3
	Cookie     uint64
	CookieVerf [WriteVerfSize]byte
	Count      uint32
}

// EncodeXDR implements xdr.Marshaler.
func (a *ReadDirArgs) EncodeXDR(e *xdr.Encoder) {
	a.Dir.EncodeXDR(e)
	e.Uint64(a.Cookie)
	e.FixedOpaque(a.CookieVerf[:])
	e.Uint32(a.Count)
}

// DecodeXDR implements xdr.Unmarshaler.
func (a *ReadDirArgs) DecodeXDR(d *xdr.Decoder) {
	a.Dir.DecodeXDR(d)
	a.Cookie = d.Uint64()
	d.FixedOpaque(a.CookieVerf[:])
	a.Count = d.Uint32()
}

// DirEntry3 is one READDIR entry.
type DirEntry3 struct {
	FileID uint64
	Name   string
	Cookie uint64
}

// ReadDirRes is READDIR3res.
type ReadDirRes struct {
	Status     Status
	DirAttr    PostOpAttr
	CookieVerf [WriteVerfSize]byte
	Entries    []DirEntry3
	EOF        bool
}

// EncodeXDR implements xdr.Marshaler.
func (r *ReadDirRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.DirAttr.EncodeXDR(e)
	if r.Status != OK {
		return
	}
	e.FixedOpaque(r.CookieVerf[:])
	for i := range r.Entries {
		e.OptionalBegin(true)
		e.Uint64(r.Entries[i].FileID)
		e.String(r.Entries[i].Name)
		e.Uint64(r.Entries[i].Cookie)
	}
	e.OptionalBegin(false)
	e.Bool(r.EOF)
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *ReadDirRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.DirAttr.DecodeXDR(d)
	if r.Status != OK {
		return
	}
	d.FixedOpaque(r.CookieVerf[:])
	r.Entries = nil
	for d.OptionalPresent() {
		var ent DirEntry3
		ent.FileID = d.Uint64()
		ent.Name = d.String()
		ent.Cookie = d.Uint64()
		r.Entries = append(r.Entries, ent)
		if d.Err() != nil {
			return
		}
	}
	r.EOF = d.Bool()
}

// ReadDirPlusArgs is READDIRPLUS3args.
type ReadDirPlusArgs struct {
	Dir        FH3
	Cookie     uint64
	CookieVerf [WriteVerfSize]byte
	DirCount   uint32
	MaxCount   uint32
}

// EncodeXDR implements xdr.Marshaler.
func (a *ReadDirPlusArgs) EncodeXDR(e *xdr.Encoder) {
	a.Dir.EncodeXDR(e)
	e.Uint64(a.Cookie)
	e.FixedOpaque(a.CookieVerf[:])
	e.Uint32(a.DirCount)
	e.Uint32(a.MaxCount)
}

// DecodeXDR implements xdr.Unmarshaler.
func (a *ReadDirPlusArgs) DecodeXDR(d *xdr.Decoder) {
	a.Dir.DecodeXDR(d)
	a.Cookie = d.Uint64()
	d.FixedOpaque(a.CookieVerf[:])
	a.DirCount = d.Uint32()
	a.MaxCount = d.Uint32()
}

// DirEntryPlus is one READDIRPLUS entry.
type DirEntryPlus struct {
	FileID uint64
	Name   string
	Cookie uint64
	Attr   PostOpAttr
	FH     PostOpFH3
}

// ReadDirPlusRes is READDIRPLUS3res.
type ReadDirPlusRes struct {
	Status     Status
	DirAttr    PostOpAttr
	CookieVerf [WriteVerfSize]byte
	Entries    []DirEntryPlus
	EOF        bool
}

// EncodeXDR implements xdr.Marshaler.
func (r *ReadDirPlusRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.DirAttr.EncodeXDR(e)
	if r.Status != OK {
		return
	}
	e.FixedOpaque(r.CookieVerf[:])
	for i := range r.Entries {
		ent := &r.Entries[i]
		e.OptionalBegin(true)
		e.Uint64(ent.FileID)
		e.String(ent.Name)
		e.Uint64(ent.Cookie)
		ent.Attr.EncodeXDR(e)
		ent.FH.EncodeXDR(e)
	}
	e.OptionalBegin(false)
	e.Bool(r.EOF)
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *ReadDirPlusRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.DirAttr.DecodeXDR(d)
	if r.Status != OK {
		return
	}
	d.FixedOpaque(r.CookieVerf[:])
	r.Entries = nil
	for d.OptionalPresent() {
		var ent DirEntryPlus
		ent.FileID = d.Uint64()
		ent.Name = d.String()
		ent.Cookie = d.Uint64()
		ent.Attr.DecodeXDR(d)
		ent.FH.DecodeXDR(d)
		r.Entries = append(r.Entries, ent)
		if d.Err() != nil {
			return
		}
	}
	r.EOF = d.Bool()
}

// FSStatArgs is FSSTAT3args (also FSINFO and PATHCONF args).
type FSStatArgs struct{ Obj FH3 }

// EncodeXDR implements xdr.Marshaler.
func (a *FSStatArgs) EncodeXDR(e *xdr.Encoder) { a.Obj.EncodeXDR(e) }

// DecodeXDR implements xdr.Unmarshaler.
func (a *FSStatArgs) DecodeXDR(d *xdr.Decoder) { a.Obj.DecodeXDR(d) }

// FSStatRes is FSSTAT3res.
type FSStatRes struct {
	Status   Status
	Attr     PostOpAttr
	Tbytes   uint64
	Fbytes   uint64
	Abytes   uint64
	Tfiles   uint64
	Ffiles   uint64
	Afiles   uint64
	Invarsec uint32
}

// EncodeXDR implements xdr.Marshaler.
func (r *FSStatRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.EncodeXDR(e)
	if r.Status == OK {
		e.Uint64(r.Tbytes)
		e.Uint64(r.Fbytes)
		e.Uint64(r.Abytes)
		e.Uint64(r.Tfiles)
		e.Uint64(r.Ffiles)
		e.Uint64(r.Afiles)
		e.Uint32(r.Invarsec)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *FSStatRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.Attr.DecodeXDR(d)
	if r.Status == OK {
		r.Tbytes = d.Uint64()
		r.Fbytes = d.Uint64()
		r.Abytes = d.Uint64()
		r.Tfiles = d.Uint64()
		r.Ffiles = d.Uint64()
		r.Afiles = d.Uint64()
		r.Invarsec = d.Uint32()
	}
}

// FSInfo properties bits.
const (
	FSFLink        = 0x0001
	FSFSymlink     = 0x0002
	FSFHomogeneous = 0x0008
	FSFCanSetTime  = 0x0010
)

// FSInfoRes is FSINFO3res.
type FSInfoRes struct {
	Status      Status
	Attr        PostOpAttr
	RtMax       uint32
	RtPref      uint32
	RtMult      uint32
	WtMax       uint32
	WtPref      uint32
	WtMult      uint32
	DtPref      uint32
	MaxFileSize uint64
	TimeDelta   NFSTime
	Properties  uint32
}

// EncodeXDR implements xdr.Marshaler.
func (r *FSInfoRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.EncodeXDR(e)
	if r.Status == OK {
		e.Uint32(r.RtMax)
		e.Uint32(r.RtPref)
		e.Uint32(r.RtMult)
		e.Uint32(r.WtMax)
		e.Uint32(r.WtPref)
		e.Uint32(r.WtMult)
		e.Uint32(r.DtPref)
		e.Uint64(r.MaxFileSize)
		r.TimeDelta.enc(e)
		e.Uint32(r.Properties)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *FSInfoRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.Attr.DecodeXDR(d)
	if r.Status == OK {
		r.RtMax = d.Uint32()
		r.RtPref = d.Uint32()
		r.RtMult = d.Uint32()
		r.WtMax = d.Uint32()
		r.WtPref = d.Uint32()
		r.WtMult = d.Uint32()
		r.DtPref = d.Uint32()
		r.MaxFileSize = d.Uint64()
		r.TimeDelta.dec(d)
		r.Properties = d.Uint32()
	}
}

// PathConfRes is PATHCONF3res.
type PathConfRes struct {
	Status          Status
	Attr            PostOpAttr
	LinkMax         uint32
	NameMax         uint32
	NoTrunc         bool
	ChownRestricted bool
	CaseInsensitive bool
	CasePreserving  bool
}

// EncodeXDR implements xdr.Marshaler.
func (r *PathConfRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.EncodeXDR(e)
	if r.Status == OK {
		e.Uint32(r.LinkMax)
		e.Uint32(r.NameMax)
		e.Bool(r.NoTrunc)
		e.Bool(r.ChownRestricted)
		e.Bool(r.CaseInsensitive)
		e.Bool(r.CasePreserving)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *PathConfRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.Attr.DecodeXDR(d)
	if r.Status == OK {
		r.LinkMax = d.Uint32()
		r.NameMax = d.Uint32()
		r.NoTrunc = d.Bool()
		r.ChownRestricted = d.Bool()
		r.CaseInsensitive = d.Bool()
		r.CasePreserving = d.Bool()
	}
}

// CommitArgs is COMMIT3args.
type CommitArgs struct {
	Obj    FH3
	Offset uint64
	Count  uint32
}

// EncodeXDR implements xdr.Marshaler.
func (a *CommitArgs) EncodeXDR(e *xdr.Encoder) {
	a.Obj.EncodeXDR(e)
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
}

// DecodeXDR implements xdr.Unmarshaler.
func (a *CommitArgs) DecodeXDR(d *xdr.Decoder) {
	a.Obj.DecodeXDR(d)
	a.Offset = d.Uint64()
	a.Count = d.Uint32()
}

// CommitRes is COMMIT3res.
type CommitRes struct {
	Status Status
	Wcc    WccData
	Verf   [WriteVerfSize]byte
}

// EncodeXDR implements xdr.Marshaler.
func (r *CommitRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Wcc.EncodeXDR(e)
	if r.Status == OK {
		e.FixedOpaque(r.Verf[:])
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *CommitRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.Wcc.DecodeXDR(d)
	if r.Status == OK {
		d.FixedOpaque(r.Verf[:])
	}
}
