package nfs3

import (
	"context"
	"crypto/rand"
	"time"

	"repro/internal/oncrpc"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// PreferredIO is the server's preferred and maximum transfer size.
// The paper's experiments use 32 KB read and write block sizes.
const PreferredIO = 32 * 1024

// Server executes NFSv3 procedures against a vfs.FS backend. It
// stands in for the kernel NFS server of the paper's testbed: the
// SGFS server-side proxy forwards authorized requests to it exactly as
// the paper's proxy forwards to the localhost kernel server.
type Server struct {
	fs   vfs.FS
	fsid uint64
	verf [WriteVerfSize]byte

	// Enforce enables classic UNIX permission checking against the
	// AUTH_SYS credential of each call. Kernel NFS servers enforce
	// permissions; tests may disable it to exercise the proxy's
	// own access control in isolation.
	Enforce bool
}

// NewServer creates a server exporting fs.
func NewServer(fs vfs.FS, fsid uint64) *Server {
	s := &Server{fs: fs, fsid: fsid, Enforce: true}
	rand.Read(s.verf[:])
	return s
}

// Register installs the NFSv3 program on an RPC server.
func (s *Server) Register(r *oncrpc.Server) {
	r.Register(Program, Version, map[uint32]oncrpc.Handler{
		ProcGetAttr:     s.getattr,
		ProcSetAttr:     s.setattr,
		ProcLookup:      s.lookup,
		ProcAccess:      s.access,
		ProcReadLink:    s.readlink,
		ProcRead:        s.read,
		ProcWrite:       s.write,
		ProcCreate:      s.create,
		ProcMkdir:       s.mkdir,
		ProcSymlink:     s.symlink,
		ProcMknod:       s.mknod,
		ProcRemove:      s.remove,
		ProcRmdir:       s.rmdir,
		ProcRename:      s.rename,
		ProcLink:        s.link,
		ProcReadDir:     s.readdir,
		ProcReadDirPlus: s.readdirplus,
		ProcFSStat:      s.fsstat,
		ProcFSInfo:      s.fsinfo,
		ProcPathConf:    s.pathconf,
		ProcCommit:      s.commit,
	})
}

func creds(call *oncrpc.Call) vfs.Creds {
	if call.Cred.Sys == nil {
		return vfs.Creds{UID: ^uint32(0), GID: ^uint32(0)}
	}
	return vfs.Creds{UID: call.Cred.Sys.UID, GID: call.Cred.Sys.GID, GIDs: call.Cred.Sys.GIDs}
}

// postOp fetches post-operation attributes, tolerating failure.
func (s *Server) postOp(h vfs.Handle) PostOpAttr {
	a, err := s.fs.GetAttr(h)
	if err != nil {
		return PostOpAttr{}
	}
	return PostOpAttr{Present: true, Attr: FromAttr(a, s.fsid)}
}

// preOp captures pre-operation WCC attributes.
func (s *Server) preOp(h vfs.Handle) PreOpAttr {
	a, err := s.fs.GetAttr(h)
	if err != nil {
		return PreOpAttr{}
	}
	return PreOpAttr{Present: true, Attr: WccAttr{
		Size: a.Size, Mtime: TimeToNFS(a.Mtime), Ctime: TimeToNFS(a.Ctime),
	}}
}

// checkPerm verifies that creds hold all bits of mask on h; it returns
// OK when enforcement is disabled.
func (s *Server) checkPerm(h vfs.Handle, c vfs.Creds, mask uint32) Status {
	if !s.Enforce {
		return OK
	}
	attr, err := s.fs.GetAttr(h)
	if err != nil {
		return StatusFromError(err)
	}
	if vfs.CheckAccess(attr, c, mask) != mask {
		return Status(vfs.ErrAccess)
	}
	return OK
}

func decodeArgs(call *oncrpc.Call, v xdr.Unmarshaler) bool {
	return call.DecodeArgs(v) == nil
}

func (s *Server) getattr(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a GetAttrArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	res := &GetAttrRes{}
	attr, err := s.fs.GetAttr(a.Obj.Handle())
	if err != nil {
		res.Status = StatusFromError(err)
		return res, oncrpc.Success
	}
	res.Attr = FromAttr(attr, s.fsid)
	return res, oncrpc.Success
}

func (s *Server) setattr(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a SetAttrArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	h := a.Obj.Handle()
	res := &WccRes{}
	res.Wcc.Before = s.preOp(h)
	if a.GuardCheck {
		attr, err := s.fs.GetAttr(h)
		if err != nil {
			res.Status = StatusFromError(err)
			res.Wcc.After = s.postOp(h)
			return res, oncrpc.Success
		}
		if TimeToNFS(attr.Ctime) != a.GuardCtime {
			res.Status = Status(vfs.ErrInval) // NFS3ERR_NOT_SYNC semantics
			res.Wcc.After = s.postOp(h)
			return res, oncrpc.Success
		}
	}
	// Only the owner (or root) may change attributes other than times.
	if s.Enforce {
		attr, err := s.fs.GetAttr(h)
		if err == nil {
			c := creds(call)
			if c.UID != 0 && c.UID != attr.UID {
				res.Status = Status(vfs.ErrPerm)
				res.Wcc.After = s.postOp(h)
				return res, oncrpc.Success
			}
		}
	}
	_, err := s.fs.SetAttr(h, a.Attr.SetAttr())
	res.Status = StatusFromError(err)
	res.Wcc.After = s.postOp(h)
	return res, oncrpc.Success
}

func (s *Server) lookup(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a LookupArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	dir := a.What.Dir.Handle()
	res := &LookupRes{}
	if st := s.checkPerm(dir, creds(call), vfs.AccessLookup); st != OK {
		res.Status = st
		res.DirAttr = s.postOp(dir)
		return res, oncrpc.Success
	}
	h, attr, err := s.fs.Lookup(dir, a.What.Name)
	res.DirAttr = s.postOp(dir)
	if err != nil {
		res.Status = StatusFromError(err)
		return res, oncrpc.Success
	}
	res.Obj = FromHandle(h)
	res.Attr = PostOpAttr{Present: true, Attr: FromAttr(attr, s.fsid)}
	return res, oncrpc.Success
}

func (s *Server) access(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a AccessArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	h := a.Obj.Handle()
	res := &AccessRes{}
	attr, err := s.fs.GetAttr(h)
	if err != nil {
		res.Status = StatusFromError(err)
		return res, oncrpc.Success
	}
	res.Attr = PostOpAttr{Present: true, Attr: FromAttr(attr, s.fsid)}
	res.Access = vfs.CheckAccess(attr, creds(call), a.Access)
	return res, oncrpc.Success
}

func (s *Server) readlink(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a ReadLinkArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	h := a.Obj.Handle()
	res := &ReadLinkRes{}
	target, err := s.fs.ReadLink(h)
	res.Attr = s.postOp(h)
	if err != nil {
		res.Status = StatusFromError(err)
		return res, oncrpc.Success
	}
	res.Target = target
	return res, oncrpc.Success
}

func (s *Server) read(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a ReadArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	h := a.Obj.Handle()
	res := &ReadRes{}
	if st := s.checkPerm(h, creds(call), vfs.AccessRead); st != OK {
		res.Status = st
		res.Attr = s.postOp(h)
		return res, oncrpc.Success
	}
	count := a.Count
	if count > PreferredIO {
		count = PreferredIO
	}
	buf := make([]byte, count)
	n, eof, err := s.fs.Read(h, a.Offset, buf)
	res.Attr = s.postOp(h)
	if err != nil {
		res.Status = StatusFromError(err)
		return res, oncrpc.Success
	}
	res.Count = uint32(n)
	res.EOF = eof
	res.Data = buf[:n]
	return res, oncrpc.Success
}

func (s *Server) write(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a WriteArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	h := a.Obj.Handle()
	res := &WriteRes{Verf: s.verf}
	res.Wcc.Before = s.preOp(h)
	if st := s.checkPerm(h, creds(call), vfs.AccessModify); st != OK {
		res.Status = st
		res.Wcc.After = s.postOp(h)
		return res, oncrpc.Success
	}
	data := a.Data
	if uint32(len(data)) > a.Count {
		data = data[:a.Count]
	}
	err := s.fs.Write(h, a.Offset, data)
	res.Wcc.After = s.postOp(h)
	if err != nil {
		res.Status = StatusFromError(err)
		return res, oncrpc.Success
	}
	res.Count = uint32(len(data))
	// The backend treats all writes as immediately durable when asked;
	// unstable writes are acknowledged as written but require COMMIT,
	// mirroring a kernel server with write delay + synchronous update.
	res.Committed = a.Stable
	if a.Stable != Unstable {
		if err := s.fs.Commit(h); err != nil {
			res.Status = StatusFromError(err)
			return res, oncrpc.Success
		}
		res.Committed = FileSync
	}
	return res, oncrpc.Success
}

func (s *Server) create(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a CreateArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	dir := a.Where.Dir.Handle()
	res := &CreateRes{}
	res.DirWcc.Before = s.preOp(dir)
	if st := s.checkPerm(dir, creds(call), vfs.AccessModify); st != OK {
		res.Status = st
		res.DirWcc.After = s.postOp(dir)
		return res, oncrpc.Success
	}
	sa := a.Attr.SetAttr()
	if sa.UID == nil {
		uid := creds(call).UID
		sa.UID = &uid
	}
	if sa.GID == nil {
		gid := creds(call).GID
		sa.GID = &gid
	}
	// GUARDED create shares EXCLUSIVE's must-not-exist semantics at
	// the backend (it differs only in attribute handling).
	exclusive := a.Mode == CreateExclusive || a.Mode == CreateGuarded
	h, attr, err := s.fs.Create(dir, a.Where.Name, sa, exclusive)
	res.DirWcc.After = s.postOp(dir)
	if err != nil {
		res.Status = StatusFromError(err)
		return res, oncrpc.Success
	}
	res.Obj = PostOpFH3{Present: true, FH: FromHandle(h)}
	res.Attr = PostOpAttr{Present: true, Attr: FromAttr(attr, s.fsid)}
	return res, oncrpc.Success
}

func (s *Server) mkdir(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a MkdirArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	dir := a.Where.Dir.Handle()
	res := &CreateRes{}
	res.DirWcc.Before = s.preOp(dir)
	if st := s.checkPerm(dir, creds(call), vfs.AccessModify); st != OK {
		res.Status = st
		res.DirWcc.After = s.postOp(dir)
		return res, oncrpc.Success
	}
	sa := a.Attr.SetAttr()
	if sa.UID == nil {
		uid := creds(call).UID
		sa.UID = &uid
	}
	if sa.GID == nil {
		gid := creds(call).GID
		sa.GID = &gid
	}
	h, attr, err := s.fs.Mkdir(dir, a.Where.Name, sa)
	res.DirWcc.After = s.postOp(dir)
	if err != nil {
		res.Status = StatusFromError(err)
		return res, oncrpc.Success
	}
	res.Obj = PostOpFH3{Present: true, FH: FromHandle(h)}
	res.Attr = PostOpAttr{Present: true, Attr: FromAttr(attr, s.fsid)}
	return res, oncrpc.Success
}

func (s *Server) symlink(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a SymlinkArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	dir := a.Where.Dir.Handle()
	res := &CreateRes{}
	res.DirWcc.Before = s.preOp(dir)
	if st := s.checkPerm(dir, creds(call), vfs.AccessModify); st != OK {
		res.Status = st
		res.DirWcc.After = s.postOp(dir)
		return res, oncrpc.Success
	}
	sa := a.Attr.SetAttr()
	if sa.UID == nil {
		uid := creds(call).UID
		sa.UID = &uid
	}
	h, attr, err := s.fs.Symlink(dir, a.Where.Name, a.Target, sa)
	res.DirWcc.After = s.postOp(dir)
	if err != nil {
		res.Status = StatusFromError(err)
		return res, oncrpc.Success
	}
	res.Obj = PostOpFH3{Present: true, FH: FromHandle(h)}
	res.Attr = PostOpAttr{Present: true, Attr: FromAttr(attr, s.fsid)}
	return res, oncrpc.Success
}

func (s *Server) mknod(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	// Device nodes have no place in a grid file system; refuse.
	res := &CreateRes{Status: Status(vfs.ErrNotSupp)}
	return res, oncrpc.Success
}

func (s *Server) remove(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a RemoveArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	dir := a.Obj.Dir.Handle()
	res := &WccRes{}
	res.Wcc.Before = s.preOp(dir)
	if st := s.checkPerm(dir, creds(call), vfs.AccessModify); st != OK {
		res.Status = st
		res.Wcc.After = s.postOp(dir)
		return res, oncrpc.Success
	}
	err := s.fs.Remove(dir, a.Obj.Name)
	res.Status = StatusFromError(err)
	res.Wcc.After = s.postOp(dir)
	return res, oncrpc.Success
}

func (s *Server) rmdir(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a RemoveArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	dir := a.Obj.Dir.Handle()
	res := &WccRes{}
	res.Wcc.Before = s.preOp(dir)
	if st := s.checkPerm(dir, creds(call), vfs.AccessModify); st != OK {
		res.Status = st
		res.Wcc.After = s.postOp(dir)
		return res, oncrpc.Success
	}
	err := s.fs.Rmdir(dir, a.Obj.Name)
	res.Status = StatusFromError(err)
	res.Wcc.After = s.postOp(dir)
	return res, oncrpc.Success
}

func (s *Server) rename(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a RenameArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	from := a.From.Dir.Handle()
	to := a.To.Dir.Handle()
	res := &RenameRes{}
	res.FromWcc.Before = s.preOp(from)
	res.ToWcc.Before = s.preOp(to)
	c := creds(call)
	if st := s.checkPerm(from, c, vfs.AccessModify); st != OK {
		res.Status = st
	} else if st := s.checkPerm(to, c, vfs.AccessModify); st != OK {
		res.Status = st
	} else {
		res.Status = StatusFromError(s.fs.Rename(from, a.From.Name, to, a.To.Name))
	}
	res.FromWcc.After = s.postOp(from)
	res.ToWcc.After = s.postOp(to)
	return res, oncrpc.Success
}

func (s *Server) link(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a LinkArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	obj := a.Obj.Handle()
	dir := a.Link.Dir.Handle()
	res := &LinkRes{}
	res.LinkWcc.Before = s.preOp(dir)
	if st := s.checkPerm(dir, creds(call), vfs.AccessModify); st != OK {
		res.Status = st
	} else {
		res.Status = StatusFromError(s.fs.Link(obj, dir, a.Link.Name))
	}
	res.Attr = s.postOp(obj)
	res.LinkWcc.After = s.postOp(dir)
	return res, oncrpc.Success
}

func (s *Server) readdir(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a ReadDirArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	dir := a.Dir.Handle()
	res := &ReadDirRes{}
	if st := s.checkPerm(dir, creds(call), vfs.AccessRead); st != OK {
		res.Status = st
		res.DirAttr = s.postOp(dir)
		return res, oncrpc.Success
	}
	// Approximate the byte budget with an average entry estimate.
	maxEntries := int(a.Count / 32)
	if maxEntries < 1 {
		maxEntries = 1
	}
	entries, eof, err := s.fs.ReadDir(dir, a.Cookie, maxEntries)
	res.DirAttr = s.postOp(dir)
	if err != nil {
		res.Status = StatusFromError(err)
		return res, oncrpc.Success
	}
	res.EOF = eof
	for _, ent := range entries {
		res.Entries = append(res.Entries, DirEntry3{FileID: ent.FileID, Name: ent.Name, Cookie: ent.Cookie})
	}
	return res, oncrpc.Success
}

func (s *Server) readdirplus(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a ReadDirPlusArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	dir := a.Dir.Handle()
	res := &ReadDirPlusRes{}
	if st := s.checkPerm(dir, creds(call), vfs.AccessRead); st != OK {
		res.Status = st
		res.DirAttr = s.postOp(dir)
		return res, oncrpc.Success
	}
	maxEntries := int(a.MaxCount / 128)
	if maxEntries < 1 {
		maxEntries = 1
	}
	entries, eof, err := s.fs.ReadDir(dir, a.Cookie, maxEntries)
	res.DirAttr = s.postOp(dir)
	if err != nil {
		res.Status = StatusFromError(err)
		return res, oncrpc.Success
	}
	res.EOF = eof
	for _, ent := range entries {
		dep := DirEntryPlus{FileID: ent.FileID, Name: ent.Name, Cookie: ent.Cookie}
		if ent.Attr != nil {
			dep.Attr = PostOpAttr{Present: true, Attr: FromAttr(*ent.Attr, s.fsid)}
			dep.FH = PostOpFH3{Present: true, FH: FromHandle(ent.Handle)}
		}
		res.Entries = append(res.Entries, dep)
	}
	return res, oncrpc.Success
}

func (s *Server) fsstat(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a FSStatArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	h := a.Obj.Handle()
	res := &FSStatRes{}
	st, err := s.fs.FSStat(h)
	res.Attr = s.postOp(h)
	if err != nil {
		res.Status = StatusFromError(err)
		return res, oncrpc.Success
	}
	res.Tbytes = st.TotalBytes
	res.Fbytes = st.FreeBytes
	res.Abytes = st.AvailBytes
	res.Tfiles = st.TotalFiles
	res.Ffiles = st.FreeFiles
	res.Afiles = st.FreeFiles
	return res, oncrpc.Success
}

func (s *Server) fsinfo(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a FSStatArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	h := a.Obj.Handle()
	res := &FSInfoRes{
		RtMax: PreferredIO, RtPref: PreferredIO, RtMult: 4096,
		WtMax: PreferredIO, WtPref: PreferredIO, WtMult: 4096,
		DtPref: PreferredIO, MaxFileSize: 1 << 62,
		TimeDelta:  NFSTime{Sec: 0, NSec: uint32(time.Millisecond.Nanoseconds())},
		Properties: FSFLink | FSFSymlink | FSFHomogeneous | FSFCanSetTime,
	}
	res.Attr = s.postOp(h)
	if !res.Attr.Present {
		res.Status = Status(vfs.ErrStale)
	}
	return res, oncrpc.Success
}

func (s *Server) pathconf(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a FSStatArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	h := a.Obj.Handle()
	res := &PathConfRes{
		LinkMax: 32000, NameMax: 255,
		NoTrunc: true, CasePreserving: true,
	}
	res.Attr = s.postOp(h)
	if !res.Attr.Present {
		res.Status = Status(vfs.ErrStale)
	}
	return res, oncrpc.Success
}

func (s *Server) commit(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var a CommitArgs
	if !decodeArgs(call, &a) {
		return nil, oncrpc.GarbageArgs
	}
	h := a.Obj.Handle()
	res := &CommitRes{Verf: s.verf}
	res.Wcc.Before = s.preOp(h)
	err := s.fs.Commit(h)
	res.Status = StatusFromError(err)
	res.Wcc.After = s.postOp(h)
	return res, oncrpc.Success
}
