package nfs3

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"testing/quick"

	"repro/internal/oncrpc"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// roundTrip encodes a value and decodes it into out, failing on any
// codec error or trailing bytes.
func roundTrip(t *testing.T, in xdr.Marshaler, out xdr.Unmarshaler) {
	t.Helper()
	b, err := xdr.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := xdr.Unmarshal(b, out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
}

func TestFattr3RoundTrip(t *testing.T) {
	in := Fattr3{
		Type: 1, Mode: 0755, Nlink: 3, UID: 10, GID: 20,
		Size: 1 << 40, Used: 4096, FSID: 7, FileID: 42,
		Atime: NFSTime{1, 2}, Mtime: NFSTime{3, 4}, Ctime: NFSTime{5, 6},
	}
	var out Fattr3
	roundTrip(t, &in, &out)
	if out != in {
		t.Fatalf("got %+v", out)
	}
}

func TestSattr3AllCombinations(t *testing.T) {
	for mask := 0; mask < 16; mask++ {
		in := Sattr3{
			SetMode: mask&1 != 0, Mode: 0640,
			SetUID: mask&2 != 0, UID: 7,
			SetGID: mask&4 != 0, GID: 8,
			SetSize: mask&8 != 0, Size: 999,
			AtimeHow: uint32(mask % 3),
			MtimeHow: uint32((mask + 1) % 3),
			Atime:    NFSTime{10, 11},
			Mtime:    NFSTime{12, 13},
		}
		var out Sattr3
		roundTrip(t, &in, &out)
		if out.SetMode != in.SetMode || out.SetUID != in.SetUID ||
			out.SetGID != in.SetGID || out.SetSize != in.SetSize ||
			out.AtimeHow != in.AtimeHow || out.MtimeHow != in.MtimeHow {
			t.Fatalf("mask %d: got %+v", mask, out)
		}
	}
}

func TestSattr3ToSetAttr(t *testing.T) {
	s := Sattr3{SetMode: true, Mode: 0700, SetSize: true, Size: 5, MtimeHow: SetToClientTime, Mtime: NFSTime{100, 0}}
	sa := s.SetAttr()
	if sa.Mode == nil || *sa.Mode != 0700 {
		t.Fatal("mode lost")
	}
	if sa.Size == nil || *sa.Size != 5 {
		t.Fatal("size lost")
	}
	if sa.Mtime == nil || sa.Mtime.Unix() != 100 {
		t.Fatal("mtime lost")
	}
	if sa.UID != nil || sa.Atime != nil {
		t.Fatal("phantom fields set")
	}
}

func TestWriteArgsRoundTrip(t *testing.T) {
	in := WriteArgs{Obj: FH3{Data: []byte{1, 2, 3}}, Offset: 77, Count: 5, Stable: DataSync, Data: []byte("hello")}
	var out WriteArgs
	roundTrip(t, &in, &out)
	if !bytes.Equal(out.Data, in.Data) || out.Offset != in.Offset || out.Stable != in.Stable {
		t.Fatalf("got %+v", out)
	}
}

func TestReadDirResRoundTrip(t *testing.T) {
	in := ReadDirRes{
		Status:  OK,
		DirAttr: PostOpAttr{Present: true, Attr: Fattr3{Type: 2, FileID: 1}},
		Entries: []DirEntry3{{FileID: 1, Name: "a", Cookie: 10}, {FileID: 2, Name: "bb", Cookie: 20}},
		EOF:     true,
	}
	var out ReadDirRes
	roundTrip(t, &in, &out)
	if len(out.Entries) != 2 || out.Entries[1].Name != "bb" || !out.EOF {
		t.Fatalf("got %+v", out)
	}
}

func TestReadDirPlusResRoundTrip(t *testing.T) {
	in := ReadDirPlusRes{
		Status: OK,
		Entries: []DirEntryPlus{{
			FileID: 9, Name: "x", Cookie: 3,
			Attr: PostOpAttr{Present: true, Attr: Fattr3{Size: 11}},
			FH:   PostOpFH3{Present: true, FH: FH3{Data: []byte{9}}},
		}},
		EOF: false,
	}
	var out ReadDirPlusRes
	roundTrip(t, &in, &out)
	if len(out.Entries) != 1 || !out.Entries[0].Attr.Present || out.Entries[0].Attr.Attr.Size != 11 {
		t.Fatalf("got %+v", out)
	}
}

func TestErrorResultsCarryNoBody(t *testing.T) {
	in := LookupRes{Status: Status(vfs.ErrNoEnt), DirAttr: PostOpAttr{}}
	var out LookupRes
	roundTrip(t, &in, &out)
	if out.Status != Status(vfs.ErrNoEnt) || out.Obj.Data != nil {
		t.Fatalf("got %+v", out)
	}
}

func TestCreateExclusiveVerfEncoding(t *testing.T) {
	in := CreateArgs{
		Where: DirOpArgs{Dir: FH3{Data: []byte{1}}, Name: "f"},
		Mode:  CreateExclusive,
		Verf:  [8]byte{1, 2, 3, 4, 5, 6, 7, 8},
	}
	var out CreateArgs
	roundTrip(t, &in, &out)
	if out.Verf != in.Verf || out.Mode != CreateExclusive {
		t.Fatalf("got %+v", out)
	}
}

func TestQuickFattrRoundTrip(t *testing.T) {
	f := func(typ, mode, nlink, uid, gid uint32, size, used, fsid, fileid uint64) bool {
		in := Fattr3{Type: typ, Mode: mode, Nlink: nlink, UID: uid, GID: gid,
			Size: size, Used: used, FSID: fsid, FileID: fileid}
		var out Fattr3
		b, err := xdr.Marshal(&in)
		if err != nil {
			return false
		}
		if err := xdr.Unmarshal(b, &out); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- server-level behaviour not covered by client integration -----------

func TestServerGetAttrDirect(t *testing.T) {
	// Exercise the server through a real RPC round trip including the
	// error paths that the client integration tests don't hit.
	backend := vfs.NewMemFS()
	srv := NewServer(backend, 3)
	rpc := oncrpc.NewServer()
	srv.Register(rpc)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rpc.Serve(l)
	defer rpc.Close()

	client, err := oncrpc.Dial("tcp", l.Addr().String(), Program, Version)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Stale handle.
	var res GetAttrRes
	bogus := FH3{Data: bytes.Repeat([]byte{9}, 16)}
	if err := client.Call(context.Background(), ProcGetAttr, &GetAttrArgs{Obj: bogus}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != Status(vfs.ErrStale) {
		t.Fatalf("stale handle gave %v", res.Status)
	}

	// MKNOD is refused.
	var cres CreateRes
	root := FromHandle(backend.Root())
	err = client.Call(context.Background(), ProcMknod, &GetAttrArgs{Obj: root}, &cres)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Status != Status(vfs.ErrNotSupp) {
		t.Fatalf("mknod gave %v", cres.Status)
	}

	// FSINFO advertises the paper's 32KB preferred transfer size.
	var fi FSInfoRes
	if err := client.Call(context.Background(), ProcFSInfo, &FSStatArgs{Obj: root}, &fi); err != nil {
		t.Fatal(err)
	}
	if fi.RtMax != PreferredIO || fi.WtMax != PreferredIO {
		t.Fatalf("fsinfo rtmax %d wtmax %d", fi.RtMax, fi.WtMax)
	}

	// PATHCONF.
	var pc PathConfRes
	if err := client.Call(context.Background(), ProcPathConf, &FSStatArgs{Obj: root}, &pc); err != nil {
		t.Fatal(err)
	}
	if pc.NameMax != 255 || !pc.NoTrunc {
		t.Fatalf("pathconf %+v", pc)
	}

	// SETATTR guard: mismatching ctime is refused.
	h, attr, _ := backend.Create(backend.Root(), "guarded", vfs.SetAttr{}, false)
	_ = attr
	var wres WccRes
	args := &SetAttrArgs{
		Obj:        FromHandle(h),
		Attr:       Sattr3{SetMode: true, Mode: 0600},
		GuardCheck: true,
		GuardCtime: NFSTime{Sec: 1}, // wrong
	}
	cred, _ := (&oncrpc.AuthSys{UID: 0}).Auth()
	if err := client.CallCred(context.Background(), ProcSetAttr, cred, args, &wres); err != nil {
		t.Fatal(err)
	}
	if wres.Status == OK {
		t.Fatal("guarded setattr with stale ctime succeeded")
	}

	// SETATTR by non-owner is refused.
	other, _ := (&oncrpc.AuthSys{UID: 777}).Auth()
	args2 := &SetAttrArgs{Obj: FromHandle(h), Attr: Sattr3{SetMode: true, Mode: 0600}}
	if err := client.CallCred(context.Background(), ProcSetAttr, other, args2, &wres); err != nil {
		t.Fatal(err)
	}
	if wres.Status != Status(vfs.ErrPerm) {
		t.Fatalf("foreign setattr gave %v", wres.Status)
	}
}

func TestWriteUnstableThenCommit(t *testing.T) {
	backend := vfs.NewMemFS()
	rpc := oncrpc.NewServer()
	NewServer(backend, 3).Register(rpc)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rpc.Serve(l)
	defer rpc.Close()
	client, err := oncrpc.Dial("tcp", l.Addr().String(), Program, Version)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	cred, _ := (&oncrpc.AuthSys{UID: 0}).Auth()
	client.SetCred(cred)
	ctx := context.Background()

	h, _, _ := backend.Create(backend.Root(), "f", vfs.SetAttr{}, false)
	fh := FromHandle(h)
	var wres WriteRes
	wargs := &WriteArgs{Obj: fh, Offset: 0, Count: 4, Stable: Unstable, Data: []byte("data")}
	if err := client.Call(ctx, ProcWrite, wargs, &wres); err != nil {
		t.Fatal(err)
	}
	if wres.Status != OK || wres.Committed != Unstable {
		t.Fatalf("unstable write: %+v", wres)
	}
	verf := wres.Verf
	var cres CommitRes
	if err := client.Call(ctx, ProcCommit, &CommitArgs{Obj: fh}, &cres); err != nil {
		t.Fatal(err)
	}
	if cres.Status != OK || cres.Verf != verf {
		t.Fatalf("commit verf mismatch: %+v vs %v", cres, verf)
	}
}

// serverFixture spins a complete NFSv3 server over MemFS and returns a
// root-credentialed client.
func serverFixture(t *testing.T) (*oncrpc.Client, *vfs.MemFS) {
	t.Helper()
	backend := vfs.NewMemFS()
	rpc := oncrpc.NewServer()
	NewServer(backend, 3).Register(rpc)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rpc.Serve(l)
	t.Cleanup(rpc.Close)
	client, err := oncrpc.Dial("tcp", l.Addr().String(), Program, Version)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	cred, _ := (&oncrpc.AuthSys{UID: 0, GID: 0}).Auth()
	client.SetCred(cred)
	return client, backend
}

func TestServerSymlinkReadlinkLink(t *testing.T) {
	client, backend := serverFixture(t)
	ctx := context.Background()
	root := FromHandle(backend.Root())

	// SYMLINK
	var cres CreateRes
	sargs := &SymlinkArgs{Where: DirOpArgs{Dir: root, Name: "ln"}, Target: "a/b/c"}
	if err := client.Call(ctx, ProcSymlink, sargs, &cres); err != nil {
		t.Fatal(err)
	}
	if cres.Status != OK || !cres.Obj.Present {
		t.Fatalf("symlink: %+v", cres)
	}
	// READLINK
	var rl ReadLinkRes
	if err := client.Call(ctx, ProcReadLink, &ReadLinkArgs{Obj: cres.Obj.FH}, &rl); err != nil {
		t.Fatal(err)
	}
	if rl.Status != OK || rl.Target != "a/b/c" {
		t.Fatalf("readlink: %+v", rl)
	}
	// READLINK on a regular file fails cleanly.
	var fres CreateRes
	cargs := &CreateArgs{Where: DirOpArgs{Dir: root, Name: "plain"}, Mode: CreateUnchecked}
	client.Call(ctx, ProcCreate, cargs, &fres)
	client.Call(ctx, ProcReadLink, &ReadLinkArgs{Obj: fres.Obj.FH}, &rl)
	if rl.Status == OK {
		t.Fatal("readlink on regular file succeeded")
	}
	// LINK
	var lres LinkRes
	largs := &LinkArgs{Obj: fres.Obj.FH, Link: DirOpArgs{Dir: root, Name: "alias"}}
	if err := client.Call(ctx, ProcLink, largs, &lres); err != nil {
		t.Fatal(err)
	}
	if lres.Status != OK || !lres.Attr.Present || lres.Attr.Attr.Nlink < 2 {
		t.Fatalf("link: %+v", lres)
	}
}

func TestServerReadDirPagination(t *testing.T) {
	client, backend := serverFixture(t)
	ctx := context.Background()
	root := FromHandle(backend.Root())
	for i := 0; i < 20; i++ {
		backend.Create(backend.Root(), fmt.Sprintf("e%02d", i), vfs.SetAttr{}, false)
	}
	seen := map[string]bool{}
	var cookie uint64
	for {
		var res ReadDirRes
		args := &ReadDirArgs{Dir: root, Cookie: cookie, Count: 256}
		if err := client.Call(ctx, ProcReadDir, args, &res); err != nil {
			t.Fatal(err)
		}
		if res.Status != OK {
			t.Fatalf("readdir: %v", res.Status)
		}
		for _, e := range res.Entries {
			if seen[e.Name] {
				t.Fatalf("duplicate %q", e.Name)
			}
			seen[e.Name] = true
			cookie = e.Cookie
		}
		if res.EOF {
			break
		}
	}
	if len(seen) != 20 {
		t.Fatalf("enumerated %d entries", len(seen))
	}
}

func TestServerRenameRemoveRmdir(t *testing.T) {
	client, backend := serverFixture(t)
	ctx := context.Background()
	root := FromHandle(backend.Root())
	backend.Mkdir(backend.Root(), "d1", vfs.SetAttr{})
	backend.Create(backend.Root(), "f", vfs.SetAttr{}, false)

	var rres RenameRes
	rargs := &RenameArgs{From: DirOpArgs{Dir: root, Name: "f"}, To: DirOpArgs{Dir: root, Name: "g"}}
	if err := client.Call(ctx, ProcRename, rargs, &rres); err != nil {
		t.Fatal(err)
	}
	if rres.Status != OK {
		t.Fatalf("rename: %v", rres.Status)
	}
	var wres WccRes
	if err := client.Call(ctx, ProcRemove, &RemoveArgs{Obj: DirOpArgs{Dir: root, Name: "g"}}, &wres); err != nil {
		t.Fatal(err)
	}
	if wres.Status != OK {
		t.Fatalf("remove: %v", wres.Status)
	}
	if err := client.Call(ctx, ProcRmdir, &RemoveArgs{Obj: DirOpArgs{Dir: root, Name: "d1"}}, &wres); err != nil {
		t.Fatal(err)
	}
	if wres.Status != OK {
		t.Fatalf("rmdir: %v", wres.Status)
	}
	// Removing again reports NOENT with wcc data present.
	client.Call(ctx, ProcRemove, &RemoveArgs{Obj: DirOpArgs{Dir: root, Name: "g"}}, &wres)
	if wres.Status != Status(vfs.ErrNoEnt) {
		t.Fatalf("double remove: %v", wres.Status)
	}
}

func TestServerFSStatAndAccess(t *testing.T) {
	client, backend := serverFixture(t)
	ctx := context.Background()
	root := FromHandle(backend.Root())
	var fs FSStatRes
	if err := client.Call(ctx, ProcFSStat, &FSStatArgs{Obj: root}, &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Status != OK || fs.Tbytes == 0 {
		t.Fatalf("fsstat: %+v", fs)
	}
	var ac AccessRes
	if err := client.Call(ctx, ProcAccess, &AccessArgs{Obj: root, Access: 0x3f}, &ac); err != nil {
		t.Fatal(err)
	}
	if ac.Status != OK || ac.Access == 0 {
		t.Fatalf("access: %+v", ac)
	}
}

func TestServerGarbageArgs(t *testing.T) {
	client, _ := serverFixture(t)
	ctx := context.Background()
	// A READ with a truncated argument body must produce GARBAGE_ARGS,
	// not a hang or crash. Encode bogus args: a bare uint32 where a
	// file handle + offset + count belong.
	err := client.Call(ctx, ProcRead, &GetAttrArgs{Obj: FH3{Data: []byte{1}}}, &ReadRes{})
	var re *oncrpc.RPCError
	if err == nil {
		t.Fatal("truncated args accepted")
	}
	if !errors.As(err, &re) || re.Accept != oncrpc.GarbageArgs {
		t.Fatalf("got %v, want GARBAGE_ARGS", err)
	}
}
