package gridsec

import (
	"crypto/x509"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newTestCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("SGFS Test Grid")
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestIssueUserDN(t *testing.T) {
	ca := newTestCA(t)
	alice, err := ca.IssueUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	dn := alice.DN()
	if !strings.HasPrefix(dn, "/C=US/O=SGFS Test Grid/OU=users/CN=alice") {
		t.Fatalf("unexpected DN %q", dn)
	}
	if alice.EffectiveDN() != dn {
		t.Fatal("identity credential's effective DN must equal its own DN")
	}
}

func TestVerifyIdentityChain(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.IssueUser("alice")
	dn, err := VerifyChain(alice.Chain, ca.Pool())
	if err != nil {
		t.Fatal(err)
	}
	if dn != alice.DN() {
		t.Fatalf("got %q want %q", dn, alice.DN())
	}
}

func TestVerifyRejectsUntrustedCA(t *testing.T) {
	ca := newTestCA(t)
	other := newTestCA(t)
	mallory, _ := other.IssueUser("mallory")
	if _, err := VerifyChain(mallory.Chain, ca.Pool()); !errors.Is(err, ErrNotTrusted) {
		t.Fatalf("got %v, want ErrNotTrusted", err)
	}
}

func TestProxyDelegation(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.IssueUser("alice")
	proxy, err := alice.IssueProxy(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(proxy.Chain) != 2 {
		t.Fatalf("proxy chain length %d, want 2", len(proxy.Chain))
	}
	if !strings.HasSuffix(proxy.DN(), "/CN=alice/proxy") {
		t.Fatalf("proxy DN %q lacks proxy marker", proxy.DN())
	}
	dn, err := VerifyChain(proxy.Chain, ca.Pool())
	if err != nil {
		t.Fatal(err)
	}
	if dn != alice.DN() {
		t.Fatalf("proxy authenticated as %q, want %q", dn, alice.DN())
	}
	if proxy.EffectiveDN() != alice.DN() {
		t.Fatal("EffectiveDN should collapse to the identity DN")
	}
}

func TestNestedProxyDelegation(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.IssueUser("alice")
	p1, _ := alice.IssueProxy(time.Hour)
	p2, err := p1.IssueProxy(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Chain) != 3 {
		t.Fatalf("chain length %d, want 3", len(p2.Chain))
	}
	dn, err := VerifyChain(p2.Chain, ca.Pool())
	if err != nil {
		t.Fatal(err)
	}
	if dn != alice.DN() {
		t.Fatalf("nested proxy authenticated as %q", dn)
	}
}

func TestExpiredProxyRejected(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.IssueUser("alice")
	proxy, _ := alice.IssueProxy(time.Hour)
	future := time.Now().Add(2 * time.Hour)
	if _, err := VerifyChainAt(proxy.Chain, ca.Pool(), future); !errors.Is(err, ErrExpired) {
		t.Fatalf("got %v, want ErrExpired", err)
	}
}

func TestForgedProxyRejected(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.IssueUser("alice")
	bob, _ := ca.IssueUser("bob")
	// Bob signs a proxy for himself, then presents it atop Alice's cert.
	bobProxy, _ := bob.IssueProxy(time.Hour)
	forged := []*x509.Certificate{bobProxy.Cert, alice.Cert}
	if _, err := VerifyChain(forged, ca.Pool()); err == nil {
		t.Fatal("forged proxy chain accepted")
	}
}

func TestProxySubjectTamperRejected(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.IssueUser("alice")
	bob, _ := ca.IssueUser("bob")
	// A proxy correctly issued by bob must not verify against alice's
	// identity even if an attacker splices chains.
	bobProxy, _ := bob.IssueProxy(time.Hour)
	spliced := []*x509.Certificate{bobProxy.Cert, alice.Cert}
	_, err := VerifyChain(spliced, ca.Pool())
	if !errors.Is(err, ErrBadProxySubject) {
		t.Fatalf("got %v, want ErrBadProxySubject", err)
	}
}

func TestEmptyChain(t *testing.T) {
	ca := newTestCA(t)
	if _, err := VerifyChain(nil, ca.Pool()); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("got %v", err)
	}
}

func TestHostCertificate(t *testing.T) {
	ca := newTestCA(t)
	host, err := ca.IssueHost("fileserver.grid.example")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(host.DN(), "/OU=hosts/CN=fileserver.grid.example") {
		t.Fatalf("host DN %q", host.DN())
	}
	if _, err := VerifyChain(host.Chain, ca.Pool()); err != nil {
		t.Fatal(err)
	}
}

func TestPEMRoundTrip(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.IssueUser("alice")
	proxy, _ := alice.IssueProxy(time.Hour)
	dir := t.TempDir()
	certPath := filepath.Join(dir, "proxy.pem")
	keyPath := filepath.Join(dir, "proxy.key")
	if err := proxy.SavePEM(certPath, keyPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPEM(certPath, keyPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Chain) != 2 {
		t.Fatalf("loaded chain length %d", len(loaded.Chain))
	}
	dn, err := VerifyChain(loaded.Chain, ca.Pool())
	if err != nil {
		t.Fatal(err)
	}
	if dn != alice.DN() {
		t.Fatalf("reloaded proxy authenticates as %q", dn)
	}
	if !loaded.Key.PublicKey.Equal(&proxy.Key.PublicKey) {
		t.Fatal("reloaded key mismatch")
	}
}

func TestCACertPEMAndPool(t *testing.T) {
	ca := newTestCA(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "ca.pem")
	if err := ca.SaveCertPEM(path); err != nil {
		t.Fatal(err)
	}
	pool, err := LoadCAPool(path)
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := ca.IssueUser("alice")
	if _, err := VerifyChain(alice.Chain, pool); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctUsersDistinctDNs(t *testing.T) {
	ca := newTestCA(t)
	a, _ := ca.IssueUser("alice")
	b, _ := ca.IssueUser("bob")
	if a.DN() == b.DN() {
		t.Fatal("distinct users share a DN")
	}
}
