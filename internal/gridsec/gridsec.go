// Package gridsec implements the PKI substrate of the Grid Security
// Infrastructure (GSI) as SGFS uses it: a certificate authority,
// X.509 identity certificates for grid users and hosts, GSI-style
// proxy certificates for delegation, distinguished-name handling, and
// chain verification that yields the effective grid identity.
//
// A grid user is identified by the distinguished name (DN) of their
// identity certificate, printed in the OpenSSL "oneline" style the
// gridmap file uses (e.g. "/C=US/O=SGFS/OU=users/CN=alice"). Proxy
// certificates are signed by the user's own key, carry the user's
// subject with an extra "CN=proxy" component, and authenticate as the
// issuing user — this is how services act on a user's behalf
// (delegation) without holding the user's long-term key.
package gridsec

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/hex"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"os"
	"strings"
	"time"
)

// ProxyCN is the common-name component appended to a subject by each
// level of proxy-certificate delegation (legacy GSI convention).
const ProxyCN = "proxy"

// Verification errors.
var (
	ErrEmptyChain      = errors.New("gridsec: empty certificate chain")
	ErrBadProxySubject = errors.New("gridsec: proxy certificate subject does not extend issuer subject with CN=proxy")
	ErrExpired         = errors.New("gridsec: certificate outside its validity window")
	ErrNotTrusted      = errors.New("gridsec: identity certificate not signed by a trusted CA")
)

// CA is a certificate authority that anchors a grid trust domain.
type CA struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey

	serial int64
}

// Credential is an X.509 certificate with its private key and the
// chain back toward (but not including) the CA. For an identity
// credential the chain is just the identity certificate; for a proxy
// credential it is [proxy, ..., identity].
type Credential struct {
	Cert  *x509.Certificate
	Key   *ecdsa.PrivateKey
	Chain []*x509.Certificate // leaf first
}

// NewCA creates a self-signed certificate authority for the given
// organization.
func NewCA(org string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gridsec: generate CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{Country: []string{"US"}, Organization: []string{org}, CommonName: org + " CA"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("gridsec: self-sign CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{Cert: cert, Key: key, serial: 1}, nil
}

func (ca *CA) issue(subject pkix.Name, lifetime time.Duration) (*Credential, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gridsec: generate key: %w", err)
	}
	if ca.serial == 0 {
		// A CA reloaded from PEM has lost its serial counter; resume
		// from a timestamp to avoid reissuing old serial numbers.
		ca.serial = time.Now().UnixNano()
	}
	ca.serial++
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(ca.serial),
		Subject:      subject,
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(lifetime),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth, x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cert, &key.PublicKey, ca.Key)
	if err != nil {
		return nil, fmt.Errorf("gridsec: sign certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Credential{Cert: cert, Key: key, Chain: []*x509.Certificate{cert}}, nil
}

// IssueUser issues a grid user identity certificate valid for one year.
func (ca *CA) IssueUser(commonName string) (*Credential, error) {
	return ca.issue(pkix.Name{
		Country:            []string{"US"},
		Organization:       ca.Cert.Subject.Organization,
		OrganizationalUnit: []string{"users"},
		CommonName:         commonName,
	}, 365*24*time.Hour)
}

// IssueHost issues a host (service) certificate valid for one year.
func (ca *CA) IssueHost(hostname string) (*Credential, error) {
	return ca.issue(pkix.Name{
		Country:            []string{"US"},
		Organization:       ca.Cert.Subject.Organization,
		OrganizationalUnit: []string{"hosts"},
		CommonName:         hostname,
	}, 365*24*time.Hour)
}

// Pool returns a certificate pool containing this CA, suitable for
// chain verification.
func (ca *CA) Pool() *x509.CertPool {
	p := x509.NewCertPool()
	p.AddCert(ca.Cert)
	return p
}

// NewSelfSigned creates a standalone self-signed credential, the kind
// an SFS host or user generates without any certificate authority.
// It does not verify against any CA pool; peers authenticate it by
// public-key fingerprint (self-certifying pathnames).
func NewSelfSigned(commonName string) (*Credential, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gridsec: generate key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(time.Now().UnixNano()),
		Subject:               pkix.Name{Organization: []string{"self"}, CommonName: commonName},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth, x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Credential{Cert: cert, Key: key, Chain: []*x509.Certificate{cert}}, nil
}

// KeyFingerprint returns the SHA-256 fingerprint of a certificate's
// public key, hex-encoded — the "HostID" of SFS self-certifying
// pathnames.
func KeyFingerprint(cert *x509.Certificate) string {
	sum := sha256.Sum256(cert.RawSubjectPublicKeyInfo)
	return hex.EncodeToString(sum[:])
}

// IssueProxy creates a GSI-style proxy certificate signed by this
// credential's key, delegating the credential's identity for the given
// lifetime. The proxy's subject is this credential's subject with an
// extra CN=proxy component; verification collapses it back to the
// issuing identity.
func (c *Credential) IssueProxy(lifetime time.Duration) (*Credential, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gridsec: generate proxy key: %w", err)
	}
	// Legacy GSI proxies append CN=proxy to the issuer's subject.
	subj := c.Cert.Subject
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(time.Now().UnixNano()),
		Subject: pkix.Name{
			Country:            subj.Country,
			Organization:       subj.Organization,
			OrganizationalUnit: subj.OrganizationalUnit,
			CommonName:         subj.CommonName + "/" + ProxyCN,
		},
		NotBefore:   time.Now().Add(-time.Minute),
		NotAfter:    time.Now().Add(lifetime),
		KeyUsage:    x509.KeyUsageDigitalSignature,
		ExtKeyUsage: []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, c.Cert, &key.PublicKey, c.Key)
	if err != nil {
		return nil, fmt.Errorf("gridsec: sign proxy certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	chain := append([]*x509.Certificate{cert}, c.Chain...)
	return &Credential{Cert: cert, Key: key, Chain: chain}, nil
}

// DN returns the credential's distinguished name in gridmap form.
func (c *Credential) DN() string { return DN(c.Cert) }

// EffectiveDN returns the identity DN the credential authenticates as:
// for a proxy credential, the DN of the end-entity identity
// certificate at the bottom of the chain.
func (c *Credential) EffectiveDN() string {
	return DN(c.Chain[len(c.Chain)-1])
}

// DN formats a certificate subject in the OpenSSL "oneline" style used
// by gridmap files: /C=US/O=Org/OU=unit/CN=name.
func DN(cert *x509.Certificate) string {
	var b strings.Builder
	s := cert.Subject
	for _, v := range s.Country {
		b.WriteString("/C=" + v)
	}
	for _, v := range s.Organization {
		b.WriteString("/O=" + v)
	}
	for _, v := range s.OrganizationalUnit {
		b.WriteString("/OU=" + v)
	}
	if s.CommonName != "" {
		b.WriteString("/CN=" + s.CommonName)
	}
	return b.String()
}

// isProxyOf reports whether child's subject is parent's subject
// extended with the proxy marker.
func isProxyOf(child, parent *x509.Certificate) bool {
	want := parent.Subject.CommonName + "/" + ProxyCN
	if child.Subject.CommonName != want {
		return false
	}
	return strings.TrimSuffix(DN(child), "/"+ProxyCN) == DN(parent)
}

// VerifyChain validates a presented certificate chain (leaf first)
// against the trusted roots and returns the effective grid identity
// DN. The chain may be a bare identity certificate or an arbitrary-
// depth stack of proxy certificates atop one. Each proxy must be
// inside its validity window, signed by the certificate below it, and
// carry that certificate's subject extended with CN=proxy. The
// identity certificate at the base must chain to a trusted CA.
func VerifyChain(chain []*x509.Certificate, roots *x509.CertPool) (string, error) {
	return VerifyChainAt(chain, roots, time.Now())
}

// VerifyChainAt is VerifyChain evaluated at an explicit time, for
// testing expiry behaviour.
func VerifyChainAt(chain []*x509.Certificate, roots *x509.CertPool, now time.Time) (string, error) {
	if len(chain) == 0 {
		return "", ErrEmptyChain
	}
	// Walk proxies from the leaf down to the end-entity identity.
	for i := 0; i < len(chain)-1; i++ {
		child, parent := chain[i], chain[i+1]
		if now.Before(child.NotBefore) || now.After(child.NotAfter) {
			return "", fmt.Errorf("%w: proxy level %d", ErrExpired, i)
		}
		if !isProxyOf(child, parent) {
			return "", ErrBadProxySubject
		}
		if err := child.CheckSignatureFrom(parent); err != nil {
			// CheckSignatureFrom enforces CA basic constraints which
			// proxy issuers (end-entity certs) do not satisfy; fall
			// back to a direct signature check, which is the GSI rule.
			if err2 := parent.CheckSignature(child.SignatureAlgorithm, child.RawTBSCertificate, child.Signature); err2 != nil {
				return "", fmt.Errorf("gridsec: proxy signature invalid: %w", err2)
			}
		}
	}
	eec := chain[len(chain)-1]
	if _, err := eec.Verify(x509.VerifyOptions{
		Roots:       roots,
		CurrentTime: now,
		KeyUsages:   []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	}); err != nil {
		return "", fmt.Errorf("%w: %v", ErrNotTrusted, err)
	}
	return DN(eec), nil
}

// --- PEM persistence -------------------------------------------------

// SavePEM writes the credential's certificate chain and private key to
// certPath and keyPath. The key file is created with mode 0600,
// honouring the GSI convention for private credentials.
func (c *Credential) SavePEM(certPath, keyPath string) error {
	var certBuf strings.Builder
	for _, cert := range c.Chain {
		pem.Encode(&certBuf, &pem.Block{Type: "CERTIFICATE", Bytes: cert.Raw})
	}
	if err := os.WriteFile(certPath, []byte(certBuf.String()), 0644); err != nil {
		return err
	}
	der, err := x509.MarshalECPrivateKey(c.Key)
	if err != nil {
		return err
	}
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: der})
	return os.WriteFile(keyPath, keyPEM, 0600)
}

// LoadPEM reads a credential previously written by SavePEM.
func LoadPEM(certPath, keyPath string) (*Credential, error) {
	certData, err := os.ReadFile(certPath)
	if err != nil {
		return nil, err
	}
	var chain []*x509.Certificate
	for {
		var block *pem.Block
		block, certData = pem.Decode(certData)
		if block == nil {
			break
		}
		if block.Type != "CERTIFICATE" {
			continue
		}
		cert, err := x509.ParseCertificate(block.Bytes)
		if err != nil {
			return nil, fmt.Errorf("gridsec: parse certificate: %w", err)
		}
		chain = append(chain, cert)
	}
	if len(chain) == 0 {
		return nil, errors.New("gridsec: no certificates in " + certPath)
	}
	keyData, err := os.ReadFile(keyPath)
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(keyData)
	if block == nil {
		return nil, errors.New("gridsec: no PEM block in " + keyPath)
	}
	key, err := x509.ParseECPrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("gridsec: parse private key: %w", err)
	}
	return &Credential{Cert: chain[0], Key: key, Chain: chain}, nil
}

// SaveCertPEM writes just the CA certificate for distribution as a
// trust anchor.
func (ca *CA) SaveCertPEM(path string) error {
	data := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.Cert.Raw})
	return os.WriteFile(path, data, 0644)
}

// LoadCAPool reads one or more PEM CA certificates into a pool.
func LoadCAPool(paths ...string) (*x509.CertPool, error) {
	pool := x509.NewCertPool()
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		if !pool.AppendCertsFromPEM(data) {
			return nil, errors.New("gridsec: no CA certificates in " + p)
		}
	}
	return pool, nil
}
