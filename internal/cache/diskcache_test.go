package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/nfs3"
)

func newCache(t *testing.T, capacity int64) *DiskCache {
	t.Helper()
	c, err := New(t.TempDir(), 1024, capacity)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func fh(s string) nfs3.FH3 { return nfs3.FH3{Data: []byte(s)} }

func TestBlockRoundTrip(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	data := bytes.Repeat([]byte("d"), 1024)
	if err := c.PutBlock(fh("f1"), 3, data, false); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetBlock(fh("f1"), 3)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("block lost or corrupted")
	}
	if _, ok := c.GetBlock(fh("f1"), 4); ok {
		t.Fatal("phantom block")
	}
	if _, ok := c.GetBlock(fh("f2"), 3); ok {
		t.Fatal("cross-file block leak")
	}
}

func TestShortBlock(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	data := []byte("short")
	c.PutBlock(fh("f"), 0, data, false)
	got, ok := c.GetBlock(fh("f"), 0)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("short block: %q %v", got, ok)
	}
}

func TestOverwriteBlock(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	c.PutBlock(fh("f"), 0, []byte("old-contents"), false)
	c.PutBlock(fh("f"), 0, []byte("new"), false)
	got, _ := c.GetBlock(fh("f"), 0)
	if string(got) != "new" {
		t.Fatalf("got %q", got)
	}
}

func TestEvictionRespectsCapacityAndDirtyPin(t *testing.T) {
	t.Parallel()
	c := newCache(t, 4*1024) // four blocks
	blk := bytes.Repeat([]byte("x"), 1024)
	// Two dirty blocks are pinned.
	c.PutBlock(fh("d"), 0, blk, true)
	c.PutBlock(fh("d"), 1, blk, true)
	// Six clean blocks force eviction.
	for i := uint64(0); i < 6; i++ {
		c.PutBlock(fh("c"), i, blk, false)
	}
	if c.Used() > 4*1024 {
		t.Fatalf("used %d exceeds capacity", c.Used())
	}
	// Dirty blocks must survive.
	for i := uint64(0); i < 2; i++ {
		if _, ok := c.GetBlock(fh("d"), i); !ok {
			t.Fatalf("dirty block %d evicted", i)
		}
	}
}

func TestDirtyFlushCycle(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	blk := bytes.Repeat([]byte("w"), 1024)
	c.PutBlock(fh("f"), 2, blk, true)
	c.PutBlock(fh("f"), 0, blk, true)
	c.PutBlock(fh("f"), 1, blk, false)
	dirty := c.DirtyList(fh("f"))
	if len(dirty) != 2 || dirty[0] != 0 || dirty[1] != 2 {
		t.Fatalf("dirty list %v", dirty)
	}
	files := c.DirtyFiles()
	if len(files) != 1 {
		t.Fatalf("dirty files %d", len(files))
	}
	c.FlushDone(fh("f"), 0)
	c.FlushDone(fh("f"), 2)
	if got := c.DirtyList(fh("f")); len(got) != 0 {
		t.Fatalf("dirty after flush: %v", got)
	}
	if c.Stats().FlushedBytes != 2048 {
		t.Fatalf("flushed bytes %d", c.Stats().FlushedBytes)
	}
}

func TestDropFileCancelsDirty(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	blk := bytes.Repeat([]byte("t"), 1024)
	c.PutBlock(fh("tmp"), 0, blk, true)
	c.PutBlock(fh("tmp"), 1, blk, true)
	c.DropFile(fh("tmp"))
	if _, ok := c.GetBlock(fh("tmp"), 0); ok {
		t.Fatal("block survived drop")
	}
	if len(c.DirtyFiles()) != 0 {
		t.Fatal("dirty files after drop")
	}
	st := c.Stats()
	if st.CancelledBytes != 2048 {
		t.Fatalf("cancelled bytes %d", st.CancelledBytes)
	}
	if st.FlushedBytes != 0 {
		t.Fatal("cancelled writes counted as flushed")
	}
}

func TestAttrCache(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	if _, ok := c.GetAttr(fh("f")); ok {
		t.Fatal("phantom attr")
	}
	c.PutAttr(fh("f"), nfs3.Fattr3{Size: 99})
	a, ok := c.GetAttr(fh("f"))
	if !ok || a.Size != 99 {
		t.Fatal("attr lost")
	}
	c.UpdateAttr(fh("f"), func(a *nfs3.Fattr3) { a.Size = 100 })
	a, _ = c.GetAttr(fh("f"))
	if a.Size != 100 {
		t.Fatal("update lost")
	}
	c.InvalidateAttr(fh("f"))
	if _, ok := c.GetAttr(fh("f")); ok {
		t.Fatal("invalidate failed")
	}
}

func TestAccessCache(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	if _, ok := c.GetAccess(fh("f")); ok {
		t.Fatal("phantom access")
	}
	c.PutAccess(fh("f"), 0x1f)
	g, ok := c.GetAccess(fh("f"))
	if !ok || g != 0x1f {
		t.Fatal("access grant lost")
	}
}

func TestManyFiles(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	for i := 0; i < 50; i++ {
		key := fh(fmt.Sprintf("file%d", i))
		if err := c.PutBlock(key, 0, []byte{byte(i)}, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		got, ok := c.GetBlock(fh(fmt.Sprintf("file%d", i)), 0)
		if !ok || got[0] != byte(i) {
			t.Fatalf("file%d lost", i)
		}
	}
}

func TestStatsCounting(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	c.GetBlock(fh("f"), 0) // miss
	c.PutBlock(fh("f"), 0, []byte("x"), false)
	c.GetBlock(fh("f"), 0) // hit
	st := c.Stats()
	if st.BlockHits != 1 || st.BlockMisses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPrefetchedBlocksCountReadaheadHits(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	blk := bytes.Repeat([]byte("r"), 1024)
	if err := c.PutPrefetched(fh("f"), 0, blk); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(fh("f"), 0) {
		t.Fatal("prefetched block not cached")
	}
	// Contains must not consume the prefetched flag or count a hit.
	if st := c.Stats(); st.BlockHits != 0 || st.ReadaheadHits != 0 {
		t.Fatalf("Contains touched stats: %+v", st)
	}
	got, ok := c.GetBlock(fh("f"), 0)
	if !ok || !bytes.Equal(got, blk) {
		t.Fatal("prefetched block lost")
	}
	c.GetBlock(fh("f"), 0) // second hit: no longer a readahead hit
	st := c.Stats()
	if st.BlockHits != 2 || st.ReadaheadHits != 1 {
		t.Fatalf("stats %+v; want 2 hits, 1 readahead hit", st)
	}
}

func TestDemandPutClearsPrefetchedFlag(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	c.PutPrefetched(fh("f"), 0, []byte("ra"))
	c.PutBlock(fh("f"), 0, []byte("demand"), false)
	c.GetBlock(fh("f"), 0)
	if st := c.Stats(); st.ReadaheadHits != 0 {
		t.Fatalf("demand-put block still counted as readahead hit: %+v", st)
	}
}

// TestConcurrentHammer pounds the sharded cache from many goroutines —
// mixed gets, puts, dirty-list walks, flushes, drops, and attr traffic
// over a small capacity so eviction runs constantly. Run under -race
// this is the shard-locking regression test; it also checks that
// accounting never goes negative and dirty blocks never vanish
// silently.
func TestConcurrentHammer(t *testing.T) {
	t.Parallel()
	c := newCache(t, 64*1024)
	const (
		workers = 16
		iters   = 300
		nFiles  = 24
	)
	blk := bytes.Repeat([]byte("h"), 1024)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f := fh(fmt.Sprintf("hammer-%d", (w*7+i)%nFiles))
				switch i % 6 {
				case 0:
					if err := c.PutBlock(f, uint64(i%8), blk, i%2 == 0); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if data, ok := c.GetBlock(f, uint64(i%8)); ok && len(data) != len(blk) {
						t.Errorf("truncated block: %d bytes", len(data))
						return
					}
				case 2:
					for _, idx := range c.DirtyList(f) {
						c.FlushDone(f, idx)
					}
				case 3:
					c.PutAttr(f, nfs3.Fattr3{Size: uint64(i)})
					c.GetAttr(f)
					c.PutAccess(f, uint32(i))
					c.GetAccess(f)
				case 4:
					c.PutPrefetched(f, uint64(i%8), blk)
					c.Contains(f, uint64(i%8))
				case 5:
					if i%60 == 5 {
						c.DropFile(f)
					} else {
						c.Used()
						c.Stats()
						c.DirtyFiles()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if used := c.Used(); used < 0 {
		t.Fatalf("negative accounting: used = %d", used)
	}
	// Every remaining dirty block must still be listed and flushable.
	for _, f := range c.DirtyFiles() {
		for _, idx := range c.DirtyList(f) {
			if _, ok := c.GetBlock(f, idx); !ok {
				t.Fatalf("dirty block %v/%d unreadable", f, idx)
			}
			c.FlushDone(f, idx)
		}
	}
	if left := c.DirtyFiles(); len(left) != 0 {
		t.Fatalf("%d dirty files after full flush", len(left))
	}
}

func TestLockWaitCountersMonotonic(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	// Force contention on one shard: many goroutines, one file handle.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.PutBlock(fh("same"), uint64(i%4), []byte("x"), false)
				c.GetBlock(fh("same"), uint64(i%4))
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.LockWaits == 0 && st.LockWaitNanos != 0 {
		t.Fatalf("wait time without waits: %+v", st)
	}
}
