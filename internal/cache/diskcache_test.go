package cache

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/nfs3"
)

func newCache(t *testing.T, capacity int64) *DiskCache {
	t.Helper()
	c, err := New(t.TempDir(), 1024, capacity)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func fh(s string) nfs3.FH3 { return nfs3.FH3{Data: []byte(s)} }

func TestBlockRoundTrip(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	data := bytes.Repeat([]byte("d"), 1024)
	if err := c.PutBlock(fh("f1"), 3, data, false); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetBlock(fh("f1"), 3)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("block lost or corrupted")
	}
	if _, ok := c.GetBlock(fh("f1"), 4); ok {
		t.Fatal("phantom block")
	}
	if _, ok := c.GetBlock(fh("f2"), 3); ok {
		t.Fatal("cross-file block leak")
	}
}

func TestShortBlock(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	data := []byte("short")
	c.PutBlock(fh("f"), 0, data, false)
	got, ok := c.GetBlock(fh("f"), 0)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("short block: %q %v", got, ok)
	}
}

func TestOverwriteBlock(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	c.PutBlock(fh("f"), 0, []byte("old-contents"), false)
	c.PutBlock(fh("f"), 0, []byte("new"), false)
	got, _ := c.GetBlock(fh("f"), 0)
	if string(got) != "new" {
		t.Fatalf("got %q", got)
	}
}

func TestEvictionRespectsCapacityAndDirtyPin(t *testing.T) {
	t.Parallel()
	c := newCache(t, 4*1024) // four blocks
	blk := bytes.Repeat([]byte("x"), 1024)
	// Two dirty blocks are pinned.
	c.PutBlock(fh("d"), 0, blk, true)
	c.PutBlock(fh("d"), 1, blk, true)
	// Six clean blocks force eviction.
	for i := uint64(0); i < 6; i++ {
		c.PutBlock(fh("c"), i, blk, false)
	}
	if c.Used() > 4*1024 {
		t.Fatalf("used %d exceeds capacity", c.Used())
	}
	// Dirty blocks must survive.
	for i := uint64(0); i < 2; i++ {
		if _, ok := c.GetBlock(fh("d"), i); !ok {
			t.Fatalf("dirty block %d evicted", i)
		}
	}
}

func TestDirtyFlushCycle(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	blk := bytes.Repeat([]byte("w"), 1024)
	c.PutBlock(fh("f"), 2, blk, true)
	c.PutBlock(fh("f"), 0, blk, true)
	c.PutBlock(fh("f"), 1, blk, false)
	dirty := c.DirtyList(fh("f"))
	if len(dirty) != 2 || dirty[0] != 0 || dirty[1] != 2 {
		t.Fatalf("dirty list %v", dirty)
	}
	files := c.DirtyFiles()
	if len(files) != 1 {
		t.Fatalf("dirty files %d", len(files))
	}
	c.FlushDone(fh("f"), 0)
	c.FlushDone(fh("f"), 2)
	if got := c.DirtyList(fh("f")); len(got) != 0 {
		t.Fatalf("dirty after flush: %v", got)
	}
	if c.Stats().FlushedBytes != 2048 {
		t.Fatalf("flushed bytes %d", c.Stats().FlushedBytes)
	}
}

func TestDropFileCancelsDirty(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	blk := bytes.Repeat([]byte("t"), 1024)
	c.PutBlock(fh("tmp"), 0, blk, true)
	c.PutBlock(fh("tmp"), 1, blk, true)
	c.DropFile(fh("tmp"))
	if _, ok := c.GetBlock(fh("tmp"), 0); ok {
		t.Fatal("block survived drop")
	}
	if len(c.DirtyFiles()) != 0 {
		t.Fatal("dirty files after drop")
	}
	st := c.Stats()
	if st.CancelledBytes != 2048 {
		t.Fatalf("cancelled bytes %d", st.CancelledBytes)
	}
	if st.FlushedBytes != 0 {
		t.Fatal("cancelled writes counted as flushed")
	}
}

func TestAttrCache(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	if _, ok := c.GetAttr(fh("f")); ok {
		t.Fatal("phantom attr")
	}
	c.PutAttr(fh("f"), nfs3.Fattr3{Size: 99})
	a, ok := c.GetAttr(fh("f"))
	if !ok || a.Size != 99 {
		t.Fatal("attr lost")
	}
	c.UpdateAttr(fh("f"), func(a *nfs3.Fattr3) { a.Size = 100 })
	a, _ = c.GetAttr(fh("f"))
	if a.Size != 100 {
		t.Fatal("update lost")
	}
	c.InvalidateAttr(fh("f"))
	if _, ok := c.GetAttr(fh("f")); ok {
		t.Fatal("invalidate failed")
	}
}

func TestAccessCache(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	if _, ok := c.GetAccess(fh("f")); ok {
		t.Fatal("phantom access")
	}
	c.PutAccess(fh("f"), 0x1f)
	g, ok := c.GetAccess(fh("f"))
	if !ok || g != 0x1f {
		t.Fatal("access grant lost")
	}
}

func TestManyFiles(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	for i := 0; i < 50; i++ {
		key := fh(fmt.Sprintf("file%d", i))
		if err := c.PutBlock(key, 0, []byte{byte(i)}, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		got, ok := c.GetBlock(fh(fmt.Sprintf("file%d", i)), 0)
		if !ok || got[0] != byte(i) {
			t.Fatalf("file%d lost", i)
		}
	}
}

func TestStatsCounting(t *testing.T) {
	t.Parallel()
	c := newCache(t, 1<<20)
	c.GetBlock(fh("f"), 0) // miss
	c.PutBlock(fh("f"), 0, []byte("x"), false)
	c.GetBlock(fh("f"), 0) // hit
	st := c.Stats()
	if st.BlockHits != 1 || st.BlockMisses != 1 {
		t.Fatalf("stats %+v", st)
	}
}
