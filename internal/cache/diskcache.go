// Package cache implements the SGFS client-side proxy's disk cache:
// the mechanism behind the paper's WAN results (Figures 8-10). File
// blocks are cached in files under a local cache directory, so the
// cache can hold working sets far larger than client memory;
// attributes and access decisions are cached for the lifetime of the
// session (the paper's experiments dedicate a file system session to a
// single user or job, §6.1).
//
// Writes are absorbed locally (write-back): the proxy acknowledges
// them once they are in the disk cache, and dirty blocks flow to the
// server on Flush — typically at session close. Dirty blocks of a file
// that is removed before the flush are cancelled, which is how the
// Seismic benchmark's temporary outputs never cross the WAN (§6.3.2).
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/nfs3"
)

// DiskCache is a block/attribute/access cache backed by a directory.
// It is safe for concurrent use.
type DiskCache struct {
	dir       string
	blockSize int
	capacity  int64

	mu    sync.Mutex
	files map[string]*cacheFile
	used  int64
	lru   *list.List // *blockMeta, front = most recent

	attrs  map[string]nfs3.Fattr3
	access map[string]uint32 // fh -> granted mask for the session user

	stats Stats
}

// Stats counts cache activity.
type Stats struct {
	BlockHits      uint64
	BlockMisses    uint64
	AttrHits       uint64
	AttrMisses     uint64
	AccessHits     uint64
	AccessMisses   uint64
	FlushedBytes   uint64
	CancelledBytes uint64
}

type cacheFile struct {
	path   string
	f      *os.File
	blocks map[uint64]*blockMeta
}

type blockMeta struct {
	fh    string
	idx   uint64
	len   int
	dirty bool
	elem  *list.Element
}

// New creates a disk cache in dir (created if absent) with the given
// block size and capacity in bytes.
func New(dir string, blockSize int, capacity int64) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0700); err != nil {
		return nil, fmt.Errorf("cache: create dir: %w", err)
	}
	return &DiskCache{
		dir:       dir,
		blockSize: blockSize,
		capacity:  capacity,
		files:     make(map[string]*cacheFile),
		lru:       list.New(),
		attrs:     make(map[string]nfs3.Fattr3),
		access:    make(map[string]uint32),
	}, nil
}

// BlockSize returns the configured block size.
func (c *DiskCache) BlockSize() int { return c.blockSize }

func fhName(fh string) string {
	sum := sha256.Sum256([]byte(fh))
	return hex.EncodeToString(sum[:16]) + ".blk"
}

// file returns (opening or creating) the cache file for fh; the caller
// holds mu.
func (c *DiskCache) file(fh string, create bool) (*cacheFile, error) {
	if cf, ok := c.files[fh]; ok {
		return cf, nil
	}
	if !create {
		return nil, nil
	}
	path := filepath.Join(c.dir, fhName(fh))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0600)
	if err != nil {
		return nil, fmt.Errorf("cache: open block file: %w", err)
	}
	cf := &cacheFile{path: path, f: f, blocks: make(map[uint64]*blockMeta)}
	c.files[fh] = cf
	return cf, nil
}

// GetBlock returns the cached block data, or ok=false on a miss.
func (c *DiskCache) GetBlock(fh nfs3.FH3, idx uint64) ([]byte, bool) {
	key := string(fh.Data)
	c.mu.Lock()
	cf := c.files[key]
	if cf == nil {
		c.stats.BlockMisses++
		c.mu.Unlock()
		return nil, false
	}
	bm, ok := cf.blocks[idx]
	if !ok {
		c.stats.BlockMisses++
		c.mu.Unlock()
		return nil, false
	}
	c.stats.BlockHits++
	c.lru.MoveToFront(bm.elem)
	length := bm.len
	f := cf.f
	c.mu.Unlock()

	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, int64(idx)*int64(c.blockSize)); err != nil {
		return nil, false
	}
	return buf, true
}

// PutBlock stores block data. dirty marks it as written locally and
// not yet on the server. Eviction discards clean blocks only; dirty
// blocks are pinned until flushed or cancelled (the cache directory is
// the stable store backing the proxy's write-back guarantee).
func (c *DiskCache) PutBlock(fh nfs3.FH3, idx uint64, data []byte, dirty bool) error {
	key := string(fh.Data)
	c.mu.Lock()
	cf, err := c.file(key, true)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	f := cf.f
	c.mu.Unlock()

	// Write outside the lock; block files are never shrunk so the
	// offset is stable.
	if _, err := f.WriteAt(data, int64(idx)*int64(c.blockSize)); err != nil {
		return fmt.Errorf("cache: write block: %w", err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if bm, ok := cf.blocks[idx]; ok {
		c.used += int64(len(data)) - int64(bm.len)
		bm.len = len(data)
		bm.dirty = bm.dirty || dirty
		c.lru.MoveToFront(bm.elem)
	} else {
		bm := &blockMeta{fh: key, idx: idx, len: len(data), dirty: dirty}
		bm.elem = c.lru.PushFront(bm)
		cf.blocks[idx] = bm
		c.used += int64(len(data))
	}
	c.evictLocked()
	return nil
}

// evictLocked drops clean LRU blocks until within capacity.
func (c *DiskCache) evictLocked() {
	for c.used > c.capacity {
		var victim *blockMeta
		for e := c.lru.Back(); e != nil; e = e.Prev() {
			bm := e.Value.(*blockMeta)
			if !bm.dirty {
				victim = bm
				break
			}
		}
		if victim == nil {
			return // everything dirty; over-capacity until flush
		}
		c.removeBlockLocked(victim)
	}
}

func (c *DiskCache) removeBlockLocked(bm *blockMeta) {
	c.lru.Remove(bm.elem)
	if cf := c.files[bm.fh]; cf != nil {
		delete(cf.blocks, bm.idx)
	}
	c.used -= int64(bm.len)
}

// MarkDirty flags an existing block dirty (used after local merges).
func (c *DiskCache) MarkDirty(fh nfs3.FH3, idx uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cf := c.files[string(fh.Data)]; cf != nil {
		if bm, ok := cf.blocks[idx]; ok {
			bm.dirty = true
		}
	}
}

// DirtyList returns the dirty block indices of fh in ascending order
// (they stay dirty until FlushDone).
func (c *DiskCache) DirtyList(fh nfs3.FH3) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	cf := c.files[string(fh.Data)]
	if cf == nil {
		return nil
	}
	var out []uint64
	for idx, bm := range cf.blocks {
		if bm.dirty {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyFiles returns the handles of all files with dirty blocks.
func (c *DiskCache) DirtyFiles() []nfs3.FH3 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []nfs3.FH3
	for key, cf := range c.files {
		for _, bm := range cf.blocks {
			if bm.dirty {
				out = append(out, nfs3.FH3{Data: []byte(key)})
				break
			}
		}
	}
	return out
}

// FlushDone marks a block clean after it reached the server.
func (c *DiskCache) FlushDone(fh nfs3.FH3, idx uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cf := c.files[string(fh.Data)]; cf != nil {
		if bm, ok := cf.blocks[idx]; ok && bm.dirty {
			bm.dirty = false
			c.stats.FlushedBytes += uint64(bm.len)
		}
	}
}

// DropFile discards every cached block of fh (dirty included) and
// deletes its backing file. Used when the file is removed: pending
// write-back is cancelled.
func (c *DiskCache) DropFile(fh nfs3.FH3) {
	key := string(fh.Data)
	c.mu.Lock()
	cf := c.files[key]
	if cf != nil {
		for _, bm := range cf.blocks {
			if bm.dirty {
				c.stats.CancelledBytes += uint64(bm.len)
			}
			c.lru.Remove(bm.elem)
			c.used -= int64(bm.len)
		}
		delete(c.files, key)
	}
	delete(c.attrs, key)
	delete(c.access, key)
	c.mu.Unlock()
	if cf != nil {
		cf.f.Close()
		os.Remove(cf.path)
	}
}

// GetAttr returns cached attributes.
func (c *DiskCache) GetAttr(fh nfs3.FH3) (nfs3.Fattr3, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.attrs[string(fh.Data)]
	if ok {
		c.stats.AttrHits++
	} else {
		c.stats.AttrMisses++
	}
	return a, ok
}

// PutAttr caches attributes for the session.
func (c *DiskCache) PutAttr(fh nfs3.FH3, a nfs3.Fattr3) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attrs[string(fh.Data)] = a
}

// UpdateAttr mutates cached attributes if present.
func (c *DiskCache) UpdateAttr(fh nfs3.FH3, f func(*nfs3.Fattr3)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a, ok := c.attrs[string(fh.Data)]; ok {
		f(&a)
		c.attrs[string(fh.Data)] = a
	}
}

// InvalidateAttr drops cached attributes.
func (c *DiskCache) InvalidateAttr(fh nfs3.FH3) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.attrs, string(fh.Data))
}

// GetAccess returns the cached ACCESS grant for fh.
func (c *DiskCache) GetAccess(fh nfs3.FH3) (uint32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.access[string(fh.Data)]
	if ok {
		c.stats.AccessHits++
	} else {
		c.stats.AccessMisses++
	}
	return g, ok
}

// PutAccess caches an ACCESS grant.
func (c *DiskCache) PutAccess(fh nfs3.FH3, granted uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.access[string(fh.Data)] = granted
}

// Stats returns a snapshot of the counters.
func (c *DiskCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Used reports current cached bytes.
func (c *DiskCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Close releases all backing files and removes the cache directory
// contents.
func (c *DiskCache) Close() error {
	c.mu.Lock()
	files := c.files
	c.files = make(map[string]*cacheFile)
	c.lru.Init()
	c.used = 0
	c.mu.Unlock()
	for _, cf := range files {
		cf.f.Close()
		os.Remove(cf.path)
	}
	return nil
}
