// Package cache implements the SGFS client-side proxy's disk cache:
// the mechanism behind the paper's WAN results (Figures 8-10). File
// blocks are cached in files under a local cache directory, so the
// cache can hold working sets far larger than client memory;
// attributes and access decisions are cached for the lifetime of the
// session (the paper's experiments dedicate a file system session to a
// single user or job, §6.1).
//
// Writes are absorbed locally (write-back): the proxy acknowledges
// them once they are in the disk cache, and dirty blocks flow to the
// server on Flush — typically at session close. Dirty blocks of a file
// that is removed before the flush are cancelled, which is how the
// Seismic benchmark's temporary outputs never cross the WAN (§6.3.2).
//
// The cache is sharded by file handle: each shard has its own mutex,
// block/attr/access maps, and LRU list, so concurrent requests for
// unrelated files (the pipelined flush workers, the readahead pool,
// and foreground NFS traffic) do not serialize on one global lock.
// Block file pread/pwrite syscalls always happen outside the shard
// lock. Capacity is accounted globally — a single hot file may use the
// whole budget — and each shard evicts its own clean LRU blocks while
// the global total is over capacity.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nfs3"
)

// shardCount is the number of independent cache shards. Handles are
// distributed by FNV-1a, so any workload touching more than a handful
// of files spreads across locks.
const shardCount = 16

// DiskCache is a block/attribute/access cache backed by a directory.
// It is safe for concurrent use.
type DiskCache struct {
	dir       string
	blockSize int
	capacity  int64
	used      atomic.Int64

	shards [shardCount]cacheShard
}

// cacheShard holds the metadata for one slice of the handle space.
type cacheShard struct {
	mu     sync.Mutex
	files  map[string]*cacheFile
	lru    *list.List // *blockMeta, front = most recent
	attrs  map[string]nfs3.Fattr3
	access map[string]uint32 // fh -> granted mask for the session user
	stats  Stats

	lockWaits  atomic.Uint64
	lockWaitNs atomic.Int64
}

// lock acquires the shard mutex, counting contended acquisitions and
// the time spent waiting so the sharding's effect is observable in
// Stats.
func (s *cacheShard) lock() {
	if s.mu.TryLock() {
		return
	}
	start := time.Now()
	s.mu.Lock()
	s.lockWaits.Add(1)
	s.lockWaitNs.Add(time.Since(start).Nanoseconds())
}

func (s *cacheShard) unlock() { s.mu.Unlock() }

// Stats counts cache activity.
type Stats struct {
	BlockHits      uint64
	BlockMisses    uint64
	AttrHits       uint64
	AttrMisses     uint64
	AccessHits     uint64
	AccessMisses   uint64
	FlushedBytes   uint64
	CancelledBytes uint64
	// ReadaheadHits counts GetBlock hits whose block was brought in by
	// the proxy's readahead rather than by demand fetch.
	ReadaheadHits uint64
	// LockWaits and LockWaitNanos count contended shard-lock
	// acquisitions and the total time spent waiting for them.
	LockWaits     uint64
	LockWaitNanos uint64
}

type cacheFile struct {
	path   string
	f      *os.File
	blocks map[uint64]*blockMeta
}

type blockMeta struct {
	fh         string
	idx        uint64
	len        int
	dirty      bool
	prefetched bool // brought in by readahead; cleared on first hit
	elem       *list.Element
}

// New creates a disk cache in dir (created if absent) with the given
// block size and capacity in bytes.
func New(dir string, blockSize int, capacity int64) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0700); err != nil {
		return nil, fmt.Errorf("cache: create dir: %w", err)
	}
	c := &DiskCache{dir: dir, blockSize: blockSize, capacity: capacity}
	for i := range c.shards {
		s := &c.shards[i]
		s.files = make(map[string]*cacheFile)
		s.lru = list.New()
		s.attrs = make(map[string]nfs3.Fattr3)
		s.access = make(map[string]uint32)
	}
	return c, nil
}

// BlockSize returns the configured block size.
func (c *DiskCache) BlockSize() int { return c.blockSize }

// shard maps a file-handle key to its shard.
func (c *DiskCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%shardCount]
}

func fhName(fh string) string {
	sum := sha256.Sum256([]byte(fh))
	return hex.EncodeToString(sum[:16]) + ".blk"
}

// fileLocked returns (opening or creating) the cache file for fh; the
// caller holds s's lock.
func (c *DiskCache) fileLocked(s *cacheShard, fh string, create bool) (*cacheFile, error) {
	if cf, ok := s.files[fh]; ok {
		return cf, nil
	}
	if !create {
		return nil, nil
	}
	path := filepath.Join(c.dir, fhName(fh))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0600)
	if err != nil {
		return nil, fmt.Errorf("cache: open block file: %w", err)
	}
	cf := &cacheFile{path: path, f: f, blocks: make(map[uint64]*blockMeta)}
	s.files[fh] = cf
	return cf, nil
}

// GetBlock returns the cached block data, or ok=false on a miss.
func (c *DiskCache) GetBlock(fh nfs3.FH3, idx uint64) ([]byte, bool) {
	key := string(fh.Data)
	s := c.shard(key)
	s.lock()
	cf := s.files[key]
	if cf == nil {
		s.stats.BlockMisses++
		s.unlock()
		return nil, false
	}
	bm, ok := cf.blocks[idx]
	if !ok {
		s.stats.BlockMisses++
		s.unlock()
		return nil, false
	}
	s.stats.BlockHits++
	if bm.prefetched {
		bm.prefetched = false
		s.stats.ReadaheadHits++
	}
	s.lru.MoveToFront(bm.elem)
	length := bm.len
	f := cf.f
	s.unlock()

	// Read outside the lock; block files are never shrunk so the
	// offset is stable (the file may be deleted concurrently by
	// DropFile/Close, in which case the open descriptor still serves
	// the data).
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, int64(idx)*int64(c.blockSize)); err != nil {
		return nil, false
	}
	return buf, true
}

// Contains reports whether the block is cached, without touching hit
// statistics, the LRU, or the prefetched flag. The readahead machinery
// uses it to skip blocks already present.
func (c *DiskCache) Contains(fh nfs3.FH3, idx uint64) bool {
	key := string(fh.Data)
	s := c.shard(key)
	s.lock()
	defer s.unlock()
	cf := s.files[key]
	if cf == nil {
		return false
	}
	_, ok := cf.blocks[idx]
	return ok
}

// PutBlock stores block data. dirty marks it as written locally and
// not yet on the server. Eviction discards clean blocks only; dirty
// blocks are pinned until flushed or cancelled (the cache directory is
// the stable store backing the proxy's write-back guarantee).
func (c *DiskCache) PutBlock(fh nfs3.FH3, idx uint64, data []byte, dirty bool) error {
	return c.putBlock(fh, idx, data, dirty, false)
}

// PutPrefetched stores a clean block brought in by readahead, marking
// it so the first demand hit is counted in Stats.ReadaheadHits.
func (c *DiskCache) PutPrefetched(fh nfs3.FH3, idx uint64, data []byte) error {
	return c.putBlock(fh, idx, data, false, true)
}

func (c *DiskCache) putBlock(fh nfs3.FH3, idx uint64, data []byte, dirty, prefetched bool) error {
	key := string(fh.Data)
	s := c.shard(key)
	s.lock()
	cf, err := c.fileLocked(s, key, true)
	if err != nil {
		s.unlock()
		return err
	}
	f := cf.f
	s.unlock()

	// Write outside the lock; block files are never shrunk so the
	// offset is stable.
	if _, err := f.WriteAt(data, int64(idx)*int64(c.blockSize)); err != nil {
		return fmt.Errorf("cache: write block: %w", err)
	}

	s.lock()
	defer s.unlock()
	if bm, ok := cf.blocks[idx]; ok {
		c.used.Add(int64(len(data)) - int64(bm.len))
		bm.len = len(data)
		bm.dirty = bm.dirty || dirty
		// A demand put of data the prefetcher also fetched (or a local
		// write over it) ends its life as a readahead block.
		bm.prefetched = bm.prefetched && prefetched
		s.lru.MoveToFront(bm.elem)
	} else {
		bm := &blockMeta{fh: key, idx: idx, len: len(data), dirty: dirty, prefetched: prefetched}
		bm.elem = s.lru.PushFront(bm)
		cf.blocks[idx] = bm
		c.used.Add(int64(len(data)))
	}
	c.evictLocked(s)
	return nil
}

// evictLocked drops this shard's clean LRU blocks while the cache as a
// whole is over capacity. Capacity is global, so a shard holding no
// clean blocks leaves eviction to the shards where insertions (and
// thus growth) are happening.
func (c *DiskCache) evictLocked(s *cacheShard) {
	for c.used.Load() > c.capacity {
		var victim *blockMeta
		for e := s.lru.Back(); e != nil; e = e.Prev() {
			bm := e.Value.(*blockMeta)
			if !bm.dirty {
				victim = bm
				break
			}
		}
		if victim == nil {
			return // everything here dirty; over-capacity until flush
		}
		c.removeBlockLocked(s, victim)
	}
}

func (c *DiskCache) removeBlockLocked(s *cacheShard, bm *blockMeta) {
	s.lru.Remove(bm.elem)
	if cf := s.files[bm.fh]; cf != nil {
		delete(cf.blocks, bm.idx)
	}
	c.used.Add(-int64(bm.len))
}

// MarkDirty flags an existing block dirty (used after local merges).
func (c *DiskCache) MarkDirty(fh nfs3.FH3, idx uint64) {
	key := string(fh.Data)
	s := c.shard(key)
	s.lock()
	defer s.unlock()
	if cf := s.files[key]; cf != nil {
		if bm, ok := cf.blocks[idx]; ok {
			bm.dirty = true
			bm.prefetched = false
		}
	}
}

// DirtyList returns the dirty block indices of fh in ascending order
// (they stay dirty until FlushDone).
func (c *DiskCache) DirtyList(fh nfs3.FH3) []uint64 {
	key := string(fh.Data)
	s := c.shard(key)
	s.lock()
	defer s.unlock()
	cf := s.files[key]
	if cf == nil {
		return nil
	}
	var out []uint64
	for idx, bm := range cf.blocks {
		if bm.dirty {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyFiles returns the handles of all files with dirty blocks.
func (c *DiskCache) DirtyFiles() []nfs3.FH3 {
	var out []nfs3.FH3
	for i := range c.shards {
		s := &c.shards[i]
		s.lock()
		for key, cf := range s.files {
			for _, bm := range cf.blocks {
				if bm.dirty {
					out = append(out, nfs3.FH3{Data: []byte(key)})
					break
				}
			}
		}
		s.unlock()
	}
	return out
}

// AttrFiles returns every handle with cached attributes, in no
// particular order. Revalidation sweeps use it to enumerate what the
// session believes it knows.
func (c *DiskCache) AttrFiles() []nfs3.FH3 {
	var out []nfs3.FH3
	for i := range c.shards {
		s := &c.shards[i]
		s.lock()
		for key := range s.attrs {
			out = append(out, nfs3.FH3{Data: []byte(key)})
		}
		s.unlock()
	}
	return out
}

// FlushDone marks a block clean after it reached the server.
func (c *DiskCache) FlushDone(fh nfs3.FH3, idx uint64) {
	key := string(fh.Data)
	s := c.shard(key)
	s.lock()
	defer s.unlock()
	if cf := s.files[key]; cf != nil {
		if bm, ok := cf.blocks[idx]; ok && bm.dirty {
			bm.dirty = false
			s.stats.FlushedBytes += uint64(bm.len)
		}
	}
}

// DropFile discards every cached block of fh (dirty included) and
// deletes its backing file. Used when the file is removed: pending
// write-back is cancelled.
func (c *DiskCache) DropFile(fh nfs3.FH3) {
	key := string(fh.Data)
	s := c.shard(key)
	s.lock()
	cf := s.files[key]
	if cf != nil {
		for _, bm := range cf.blocks {
			if bm.dirty {
				s.stats.CancelledBytes += uint64(bm.len)
			}
			s.lru.Remove(bm.elem)
			c.used.Add(-int64(bm.len))
		}
		delete(s.files, key)
	}
	delete(s.attrs, key)
	delete(s.access, key)
	s.unlock()
	if cf != nil {
		cf.f.Close()
		os.Remove(cf.path)
	}
}

// GetAttr returns cached attributes.
func (c *DiskCache) GetAttr(fh nfs3.FH3) (nfs3.Fattr3, bool) {
	key := string(fh.Data)
	s := c.shard(key)
	s.lock()
	defer s.unlock()
	a, ok := s.attrs[key]
	if ok {
		s.stats.AttrHits++
	} else {
		s.stats.AttrMisses++
	}
	return a, ok
}

// PutAttr caches attributes for the session.
func (c *DiskCache) PutAttr(fh nfs3.FH3, a nfs3.Fattr3) {
	key := string(fh.Data)
	s := c.shard(key)
	s.lock()
	defer s.unlock()
	s.attrs[key] = a
}

// UpdateAttr mutates cached attributes if present.
func (c *DiskCache) UpdateAttr(fh nfs3.FH3, f func(*nfs3.Fattr3)) {
	key := string(fh.Data)
	s := c.shard(key)
	s.lock()
	defer s.unlock()
	if a, ok := s.attrs[key]; ok {
		f(&a)
		s.attrs[key] = a
	}
}

// InvalidateAttr drops cached attributes.
func (c *DiskCache) InvalidateAttr(fh nfs3.FH3) {
	key := string(fh.Data)
	s := c.shard(key)
	s.lock()
	defer s.unlock()
	delete(s.attrs, key)
}

// GetAccess returns the cached ACCESS grant for fh.
func (c *DiskCache) GetAccess(fh nfs3.FH3) (uint32, bool) {
	key := string(fh.Data)
	s := c.shard(key)
	s.lock()
	defer s.unlock()
	g, ok := s.access[key]
	if ok {
		s.stats.AccessHits++
	} else {
		s.stats.AccessMisses++
	}
	return g, ok
}

// PutAccess caches an ACCESS grant.
func (c *DiskCache) PutAccess(fh nfs3.FH3, granted uint32) {
	key := string(fh.Data)
	s := c.shard(key)
	s.lock()
	defer s.unlock()
	s.access[key] = granted
}

// Stats returns a snapshot of the counters, aggregated across shards.
func (c *DiskCache) Stats() Stats {
	var total Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.lock()
		st := s.stats
		s.unlock()
		total.BlockHits += st.BlockHits
		total.BlockMisses += st.BlockMisses
		total.AttrHits += st.AttrHits
		total.AttrMisses += st.AttrMisses
		total.AccessHits += st.AccessHits
		total.AccessMisses += st.AccessMisses
		total.FlushedBytes += st.FlushedBytes
		total.CancelledBytes += st.CancelledBytes
		total.ReadaheadHits += st.ReadaheadHits
		total.LockWaits += s.lockWaits.Load()
		total.LockWaitNanos += uint64(s.lockWaitNs.Load())
	}
	return total
}

// Used reports current cached bytes.
func (c *DiskCache) Used() int64 { return c.used.Load() }

// Close releases all backing files and removes the cache directory
// contents.
func (c *DiskCache) Close() error {
	var files []*cacheFile
	for i := range c.shards {
		s := &c.shards[i]
		s.lock()
		for _, cf := range s.files {
			files = append(files, cf)
		}
		s.files = make(map[string]*cacheFile)
		s.lru.Init()
		s.unlock()
	}
	c.used.Store(0)
	for _, cf := range files {
		cf.f.Close()
		os.Remove(cf.path)
	}
	return nil
}
