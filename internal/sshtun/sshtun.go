// Package sshtun reproduces the gfs-ssh baseline of the paper
// ([45], Figure 1): an SSH-style encrypting tunnel interposed between
// the GFS proxies. Each file system message crosses two extra
// user-level forwarders — the tunnel client on the compute node and
// the tunnel daemon on the file server — paying the double
// network-stack traversal and kernel/user switching the paper blames
// for gfs-ssh's slowdown (§6.2.1), plus AES-256-CBC + HMAC-SHA1
// cryptography on the tunnel hop.
//
// The tunnel endpoints authenticate with the same PKI as SGFS (an SSH
// deployment would use SSH host keys; the cryptographic work per byte
// is equivalent) and protect the hop with the securechan record layer
// pinned to the AES-256-CBC + HMAC-SHA1 suite, matching the paper's
// tunnel configuration.
package sshtun

import (
	"io"
	"net"
	"sync"

	"repro/internal/securechan"
)

// Dialer opens a transport.
type Dialer func() (net.Conn, error)

// Server is the tunnel daemon on the file server side: it accepts
// encrypted tunnel connections and relays plaintext to the target
// (the server-side GFS proxy).
type Server struct {
	cfg    *securechan.Config
	target Dialer

	mu        sync.Mutex
	listeners []net.Listener
	closed    bool
}

// NewServer creates a tunnel daemon relaying to target.
func NewServer(cfg *securechan.Config, target Dialer) *Server {
	pinned := *cfg
	pinned.Suites = []securechan.Suite{securechan.SuiteAES256SHA1}
	return &Server{cfg: &pinned, target: target}
}

// Serve accepts tunnel connections on l.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listeners = append(s.listeners, l)
	closed := s.closed
	s.mu.Unlock()
	if closed {
		l.Close()
		return net.ErrClosed
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(raw net.Conn) {
	sc, err := securechan.Server(raw, s.cfg)
	if err != nil {
		return
	}
	out, err := s.target()
	if err != nil {
		sc.Close()
		return
	}
	relay(sc, out)
}

// Close shuts down all listeners.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for _, l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()
}

// Client is the tunnel endpoint on the compute node: it accepts
// plaintext connections from the local GFS proxy and relays them,
// encrypted, to the tunnel daemon.
type Client struct {
	cfg    *securechan.Config
	server Dialer

	mu        sync.Mutex
	listeners []net.Listener
	closed    bool
}

// NewClient creates a tunnel client that connects to the daemon via
// server.
func NewClient(cfg *securechan.Config, server Dialer) *Client {
	pinned := *cfg
	pinned.Suites = []securechan.Suite{securechan.SuiteAES256SHA1}
	return &Client{cfg: &pinned, server: server}
}

// Serve accepts local plaintext connections on l.
func (c *Client) Serve(l net.Listener) error {
	c.mu.Lock()
	c.listeners = append(c.listeners, l)
	closed := c.closed
	c.mu.Unlock()
	if closed {
		l.Close()
		return net.ErrClosed
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go c.handle(conn)
	}
}

func (c *Client) handle(local net.Conn) {
	raw, err := c.server()
	if err != nil {
		local.Close()
		return
	}
	sc, err := securechan.Client(raw, c.cfg)
	if err != nil {
		local.Close()
		return
	}
	relay(local, sc)
}

// Close shuts down all listeners.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	for _, l := range c.listeners {
		l.Close()
	}
	c.mu.Unlock()
}

// relay copies both directions until either side fails, then closes
// both — the user-level forwarding hop of the tunnel.
func relay(a, b net.Conn) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		io.Copy(b, a)
		b.Close()
		a.Close()
	}()
	go func() {
		defer wg.Done()
		io.Copy(a, b)
		a.Close()
		b.Close()
	}()
	wg.Wait()
}
