package sshtun

import (
	"bytes"
	"io"
	"net"
	"testing"

	"repro/internal/gridsec"
	"repro/internal/securechan"
)

// startEcho runs a plaintext echo server (standing in for the GFS
// server-side proxy).
func startEcho(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()
	return l.Addr().String()
}

func buildTunnel(t *testing.T) string {
	t.Helper()
	ca, err := gridsec.NewCA("Tunnel Grid")
	if err != nil {
		t.Fatal(err)
	}
	hostCred, _ := ca.IssueHost("fileserver")
	userCred, _ := ca.IssueUser("alice")

	echoAddr := startEcho(t)

	srv := NewServer(
		&securechan.Config{Credential: hostCred, Roots: ca.Pool()},
		func() (net.Conn, error) { return net.Dial("tcp", echoAddr) },
	)
	srvL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(srvL)
	t.Cleanup(srv.Close)

	cli := NewClient(
		&securechan.Config{Credential: userCred, Roots: ca.Pool()},
		func() (net.Conn, error) { return net.Dial("tcp", srvL.Addr().String()) },
	)
	cliL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go cli.Serve(cliL)
	t.Cleanup(cli.Close)
	return cliL.Addr().String()
}

func TestTunnelEndToEnd(t *testing.T) {
	addr := buildTunnel(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("rpc message through double forwarding")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
}

func TestTunnelLargeTransfer(t *testing.T) {
	addr := buildTunnel(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := bytes.Repeat([]byte{0xAB}, 512*1024)
	go conn.Write(payload)
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large transfer corrupted through tunnel")
	}
}

func TestTunnelMultipleConnections(t *testing.T) {
	addr := buildTunnel(t)
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte{byte(i), byte(i + 1)}
		conn.Write(msg)
		got := make([]byte, 2)
		if _, err := io.ReadFull(conn, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("conn %d corrupted", i)
		}
		conn.Close()
	}
}

func TestTunnelWireIsEncrypted(t *testing.T) {
	// Interpose on the tunnel hop and confirm the plaintext never
	// appears on the wire.
	ca, _ := gridsec.NewCA("Tunnel Grid")
	hostCred, _ := ca.IssueHost("fs")
	userCred, _ := ca.IssueUser("alice")
	echoAddr := startEcho(t)

	srv := NewServer(&securechan.Config{Credential: hostCred, Roots: ca.Pool()},
		func() (net.Conn, error) { return net.Dial("tcp", echoAddr) })
	srvL, _ := net.Listen("tcp", "127.0.0.1:0")
	go srv.Serve(srvL)
	defer srv.Close()

	// Sniffing relay between tunnel client and server.
	var sniffed bytes.Buffer
	var sniffMu chan struct{} = make(chan struct{}, 1)
	sniffL, _ := net.Listen("tcp", "127.0.0.1:0")
	defer sniffL.Close()
	go func() {
		for {
			c, err := sniffL.Accept()
			if err != nil {
				return
			}
			out, err := net.Dial("tcp", srvL.Addr().String())
			if err != nil {
				c.Close()
				continue
			}
			go func() {
				buf := make([]byte, 32*1024)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						sniffMu <- struct{}{}
						sniffed.Write(buf[:n])
						<-sniffMu
						out.Write(buf[:n])
					}
					if err != nil {
						out.Close()
						return
					}
				}
			}()
			go io.Copy(c, out)
		}
	}()

	cli := NewClient(&securechan.Config{Credential: userCred, Roots: ca.Pool()},
		func() (net.Conn, error) { return net.Dial("tcp", sniffL.Addr().String()) })
	cliL, _ := net.Listen("tcp", "127.0.0.1:0")
	go cli.Serve(cliL)
	defer cli.Close()

	conn, err := net.Dial("tcp", cliL.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	secret := []byte("TOP-SECRET-SEISMIC-COORDINATES-0123456789")
	conn.Write(secret)
	got := make([]byte, len(secret))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	sniffMu <- struct{}{}
	leaked := bytes.Contains(sniffed.Bytes(), secret)
	<-sniffMu
	if leaked {
		t.Fatal("plaintext leaked onto the tunnel wire")
	}
}
