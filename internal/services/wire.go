// Package services implements the SGFS management services (§3.2,
// §4.4): the File System Service (FSS) that runs on every client and
// server host and controls the local proxies, and the Data Scheduler
// Service (DSS) that schedules and customizes SGFS sessions through
// the FSSs. Service interactions travel as WS-Security-signed SOAP
// messages over HTTP (message-level security), while the data sessions
// they create use transport-level security — the paper's two-level
// architecture.
package services

import "encoding/xml"

// CreateSessionRequest asks an FSS to start a proxy session on its
// host. Credential material travels inline (the delegation step: the
// DSS forwards the user's proxy credential so the client-side proxy
// can authenticate as the user).
type CreateSessionRequest struct {
	XMLName     xml.Name `xml:"CreateSession"`
	Role        string   `xml:"Role"` // "client" or "server"
	Export      string   `xml:"Export"`
	Upstream    string   `xml:"Upstream,omitempty"` // server role: NFS server address
	Server      string   `xml:"Server,omitempty"`   // client role: server proxy address
	Suite       string   `xml:"Suite"`
	CertPEM     string   `xml:"CertPEM"`
	KeyPEM      string   `xml:"KeyPEM"`
	CAPEM       string   `xml:"CAPEM"`
	Gridmap     string   `xml:"Gridmap,omitempty"`  // server role: gridmap file content
	Accounts    string   `xml:"Accounts,omitempty"` // server role: accounts file content
	FineGrained bool     `xml:"FineGrained,omitempty"`
	DiskCache   bool     `xml:"DiskCache,omitempty"` // client role

	// Servers lists replica server-proxy addresses (client role). When
	// non-empty it supersedes Server and the client proxy replicates
	// writes across the set, hedging reads between members.
	Servers []string `xml:"Servers>Server,omitempty"`
	// ReplicaCount (k) and Quorum tune the replication layer; zero
	// values follow the placement defaults (k = all servers, quorum =
	// majority of k).
	ReplicaCount int `xml:"ReplicaCount,omitempty"`
	Quorum       int `xml:"Quorum,omitempty"`
	// HedgeDelayMS is the hedged-read delay in milliseconds (0 =
	// proxy default).
	HedgeDelayMS int `xml:"HedgeDelayMS,omitempty"`
}

// CreateSessionResponse reports the new session.
type CreateSessionResponse struct {
	XMLName xml.Name `xml:"CreateSessionResult"`
	ID      string   `xml:"ID"`
	Addr    string   `xml:"Addr"` // proxy listen address
}

// DestroySessionRequest tears a session down (flushing write-back
// data first for client sessions).
type DestroySessionRequest struct {
	XMLName xml.Name `xml:"DestroySession"`
	ID      string   `xml:"ID"`
}

// RekeySessionRequest forces a session-key renegotiation.
type RekeySessionRequest struct {
	XMLName xml.Name `xml:"RekeySession"`
	ID      string   `xml:"ID"`
}

// FlushSessionRequest writes back dirty cached data.
type FlushSessionRequest struct {
	XMLName xml.Name `xml:"FlushSession"`
	ID      string   `xml:"ID"`
}

// ReconfigureSessionRequest replaces a server session's gridmap.
type ReconfigureSessionRequest struct {
	XMLName xml.Name `xml:"ReconfigureSession"`
	ID      string   `xml:"ID"`
	Gridmap string   `xml:"Gridmap"`
}

// ACLEntryXML is one fine-grained ACL entry.
type ACLEntryXML struct {
	DN   string `xml:"DN"`
	Perm string `xml:"Perm"` // rwx letters or numeric mask
}

// SetACLRequest installs a fine-grained ACL on a path within a server
// session's export (the services manage per-file ACLs "through the
// server-side proxies", §4.4).
type SetACLRequest struct {
	XMLName xml.Name      `xml:"SetACL"`
	ID      string        `xml:"ID"`
	Path    string        `xml:"Path"`
	Entries []ACLEntryXML `xml:"Entry"`
}

// OKResponse acknowledges an operation.
type OKResponse struct {
	XMLName xml.Name `xml:"OK"`
	Detail  string   `xml:"Detail,omitempty"`
}

// FaultResponse reports a failure.
type FaultResponse struct {
	XMLName xml.Name `xml:"Fault"`
	Reason  string   `xml:"Reason"`
}

// --- DSS operations ---------------------------------------------------

// GrantAccessRequest (admin-only) authorizes a grid user on an export
// in the DSS database, mapping them to a local account.
type GrantAccessRequest struct {
	XMLName xml.Name `xml:"GrantAccess"`
	Export  string   `xml:"Export"`
	DN      string   `xml:"DN"`
	Account string   `xml:"Account"`
	UID     uint32   `xml:"UID"`
	GID     uint32   `xml:"GID"`
}

// RevokeAccessRequest removes an authorization.
type RevokeAccessRequest struct {
	XMLName xml.Name `xml:"RevokeAccess"`
	Export  string   `xml:"Export"`
	DN      string   `xml:"DN"`
}

// ScheduleSessionRequest (user-signed) asks the DSS to set up a full
// SGFS session on the user's behalf: server proxy via the server FSS,
// client proxy via the client FSS, gridmap generated from the DSS
// database.
type ScheduleSessionRequest struct {
	XMLName   xml.Name `xml:"ScheduleSession"`
	Export    string   `xml:"Export"`
	ServerFSS string   `xml:"ServerFSS"` // FSS endpoint on the file server
	ClientFSS string   `xml:"ClientFSS"` // FSS endpoint on the compute node
	Upstream  string   `xml:"Upstream"`  // NFS server address on the file server
	Suite     string   `xml:"Suite"`
	// Delegated proxy credential: lets the client FSS configure the
	// proxy to authenticate as the user.
	ProxyCertPEM string `xml:"ProxyCertPEM"`
	ProxyKeyPEM  string `xml:"ProxyKeyPEM"`
	DiskCache    bool   `xml:"DiskCache,omitempty"`
	FineGrained  bool   `xml:"FineGrained,omitempty"`

	// ServerFSSs schedules a replicated session: one server proxy per
	// FSS endpoint, paired element-wise with Upstreams. When non-empty
	// they supersede ServerFSS and Upstream.
	ServerFSSs []string `xml:"ServerFSSs>FSS,omitempty"`
	Upstreams  []string `xml:"Upstreams>Upstream,omitempty"`
	// ReplicaCount and Quorum are forwarded to the client proxy's
	// replication layer (zero = defaults).
	ReplicaCount int `xml:"ReplicaCount,omitempty"`
	Quorum       int `xml:"Quorum,omitempty"`
}

// ScheduleSessionResponse reports the established session.
type ScheduleSessionResponse struct {
	XMLName    xml.Name `xml:"ScheduleSessionResult"`
	ServerID   string   `xml:"ServerID"`
	ClientID   string   `xml:"ClientID"`
	MountAddr  string   `xml:"MountAddr"` // what the local NFS client mounts
	ServerAddr string   `xml:"ServerAddr"`

	// ServerIDs/ServerAddrs report every replica for a replicated
	// session (ServerID/ServerAddr then name the first replica).
	ServerIDs   []string `xml:"ServerIDs>ID,omitempty"`
	ServerAddrs []string `xml:"ServerAddrs>Addr,omitempty"`
}
