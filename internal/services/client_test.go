package services

import (
	"net"
	"testing"
	"time"

	"repro/internal/gridsec"
)

// TestCallStalledListenerTimesOut pins the session-setup deadline: a
// listener that accepts connections but never answers must turn into
// a bounded error, not a hung CreateSession.
func TestCallStalledListenerTimesOut(t *testing.T) {
	t.Parallel()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			// Read the request and then go silent: the black-hole
			// failure mode the response-header timeout exists for.
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}()
		}
	}()

	ca, err := gridsec.NewCA("Stall Grid")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := ca.IssueUser("caller")
	if err != nil {
		t.Fatal(err)
	}

	client := newHTTPClient(time.Second, 100*time.Millisecond, 500*time.Millisecond)
	start := time.Now()
	_, err = call(client, "http://"+l.Addr().String()+"/fss", "CreateSession",
		&CreateSessionRequest{Role: "client"}, cred, ca.Pool(), nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against a stalled listener succeeded")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("stalled call took %v; deadlines not applied", elapsed)
	}
}

// TestCallRefusedDialFailsFast: a dead endpoint (nothing listening)
// must fail within the dial deadline.
func TestCallRefusedDialFailsFast(t *testing.T) {
	t.Parallel()
	// Grab an address and release it so the dial is refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ca, err := gridsec.NewCA("Dead Grid")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := ca.IssueUser("caller")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := Call("http://"+addr+"/fss", "CreateSession",
		&CreateSessionRequest{Role: "client"}, cred, ca.Pool(), nil); err == nil {
		t.Fatal("call to dead endpoint succeeded")
	}
	if elapsed := time.Since(start); elapsed > dialTimeout+5*time.Second {
		t.Fatalf("dead-endpoint call took %v", elapsed)
	}
}
