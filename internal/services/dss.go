package services

import (
	"crypto/x509"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"

	"repro/internal/gridsec"
	"repro/internal/soapmsg"
)

// DSSConfig configures a Data Scheduler Service.
type DSSConfig struct {
	// Credential signs the DSS's responses and its calls to FSSs.
	Credential *gridsec.Credential
	// Roots anchors verification of incoming messages and FSS
	// responses.
	Roots *x509.CertPool
	// Admins lists DNs allowed to manage the access database; other
	// trusted DNs may only schedule sessions they are authorized for.
	Admins []string
	// DBPath persists the access database as JSON; empty keeps it in
	// memory only.
	DBPath string
	// Authorizer, when non-nil, supplants the built-in database for
	// access decisions — the hook for a dedicated community
	// authorization service (CAS, §4.4).
	Authorizer func(export, dn string) (account string, uid, gid uint32, ok bool)
	// CABundlePEM is the trust-anchor bundle shipped to FSSs when
	// creating sessions.
	CABundlePEM string
}

// accessEntry is one DSS database record.
type accessEntry struct {
	Account string `json:"account"`
	UID     uint32 `json:"uid"`
	GID     uint32 `json:"gid"`
}

// DSS schedules SGFS sessions: it authorizes grid users against its
// per-filesystem access database (or a CAS), generates session gridmap
// files from it, and drives the client- and server-side FSSs.
type DSS struct {
	cfg DSSConfig

	mu sync.Mutex
	db map[string]map[string]accessEntry // export -> DN -> entry
}

// NewDSS creates a scheduler, loading the database when DBPath exists.
func NewDSS(cfg DSSConfig) (*DSS, error) {
	if cfg.Credential == nil || cfg.Roots == nil {
		return nil, fmt.Errorf("services: DSS requires credential and roots")
	}
	d := &DSS{cfg: cfg, db: make(map[string]map[string]accessEntry)}
	if cfg.DBPath != "" {
		if data, err := os.ReadFile(cfg.DBPath); err == nil {
			if err := json.Unmarshal(data, &d.db); err != nil {
				return nil, fmt.Errorf("services: corrupt DSS database: %w", err)
			}
		}
	}
	return d, nil
}

func (d *DSS) persist() error {
	if d.cfg.DBPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(d.db, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(d.cfg.DBPath, data, 0600)
}

func (d *DSS) isAdmin(dn string) bool {
	for _, a := range d.cfg.Admins {
		if a == dn {
			return true
		}
	}
	return false
}

// lookupAccess resolves a user's authorization for an export.
func (d *DSS) lookupAccess(export, dn string) (accessEntry, bool) {
	if d.cfg.Authorizer != nil {
		account, uid, gid, ok := d.cfg.Authorizer(export, dn)
		return accessEntry{Account: account, UID: uid, GID: gid}, ok
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.db[export][dn]
	return e, ok
}

// ServeHTTP implements the SOAP endpoint.
func (d *DSS) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		http.Error(w, "read", http.StatusBadRequest)
		return
	}
	action, body, dn, err := soapmsg.Verify(data, d.cfg.Roots)
	if err != nil {
		d.reply(w, &FaultResponse{Reason: "authentication failed: " + err.Error()})
		return
	}
	d.reply(w, d.dispatch(action, body, dn))
}

func (d *DSS) reply(w http.ResponseWriter, v any) {
	body, err := soapmsg.MarshalBody(v)
	if err != nil {
		http.Error(w, "marshal", http.StatusInternalServerError)
		return
	}
	env, err := soapmsg.Sign("Response", body, d.cfg.Credential)
	if err != nil {
		http.Error(w, "sign", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/soap+xml")
	w.Write(env)
}

func (d *DSS) dispatch(action string, body []byte, dn string) any {
	switch action {
	case "GrantAccess":
		if !d.isAdmin(dn) {
			return &FaultResponse{Reason: "only admins may grant access"}
		}
		var req GrantAccessRequest
		if err := soapmsg.UnmarshalBody(body, &req); err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		d.mu.Lock()
		if d.db[req.Export] == nil {
			d.db[req.Export] = make(map[string]accessEntry)
		}
		d.db[req.Export][req.DN] = accessEntry{Account: req.Account, UID: req.UID, GID: req.GID}
		err := d.persist()
		d.mu.Unlock()
		if err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		return &OKResponse{}
	case "RevokeAccess":
		if !d.isAdmin(dn) {
			return &FaultResponse{Reason: "only admins may revoke access"}
		}
		var req RevokeAccessRequest
		if err := soapmsg.UnmarshalBody(body, &req); err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		d.mu.Lock()
		delete(d.db[req.Export], req.DN)
		err := d.persist()
		d.mu.Unlock()
		if err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		return &OKResponse{}
	case "ScheduleSession":
		var req ScheduleSessionRequest
		if err := soapmsg.UnmarshalBody(body, &req); err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		return d.schedule(&req, dn)
	default:
		return &FaultResponse{Reason: "unknown action " + action}
	}
}

// gridmapFor renders the session gridmap for an export from the
// database ("Per-filesystem based ACLs are stored in the DSS database,
// and used to automatically create gridmap files", §4.4).
func (d *DSS) gridmapFor(export string) (gm string, accounts string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	seen := map[string]bool{}
	for dn, e := range d.db[export] {
		gm += fmt.Sprintf("%q %s\n", dn, e.Account)
		if !seen[e.Account] {
			accounts += fmt.Sprintf("%s %d %d\n", e.Account, e.UID, e.GID)
			seen[e.Account] = true
		}
	}
	return gm, accounts
}

// schedule authorizes the user, then builds the session through the
// two FSSs on the user's behalf using the delegated proxy credential.
func (d *DSS) schedule(req *ScheduleSessionRequest, dn string) any {
	if _, ok := d.lookupAccess(req.Export, dn); !ok {
		return &FaultResponse{Reason: fmt.Sprintf("user %s not authorized for %s", dn, req.Export)}
	}
	gm, accounts := d.gridmapFor(req.Export)

	caPEM := d.cfg.CABundlePEM
	if caPEM == "" {
		return &FaultResponse{Reason: "DSS has no CA bundle configured"}
	}

	// Pair server FSS endpoints with upstream NFS addresses; the
	// legacy single-server fields are the one-replica case.
	replicated := len(req.ServerFSSs) > 0
	fssList, upstreams := req.ServerFSSs, req.Upstreams
	if !replicated {
		fssList, upstreams = []string{req.ServerFSS}, []string{req.Upstream}
	}
	if len(upstreams) != len(fssList) {
		return &FaultResponse{Reason: fmt.Sprintf(
			"%d server FSS endpoints but %d upstreams; they must pair up",
			len(fssList), len(upstreams))}
	}

	// 1. One server-side proxy per replica via its FSS, under the
	// DSS's own host credential for the channel endpoint. Any failure
	// rolls back every session already created — a half-provisioned
	// replica set would silently run below its intended redundancy.
	hostCertPEM, hostKeyPEM, err := credentialPEM(d.cfg.Credential)
	if err != nil {
		return &FaultResponse{Reason: err.Error()}
	}
	var serverIDs, serverAddrs []string
	rollback := func() {
		for i, id := range serverIDs {
			Call(fssList[i], "DestroySession", &DestroySessionRequest{ID: id},
				d.cfg.Credential, d.cfg.Roots, nil)
		}
	}
	for i, fss := range fssList {
		var srvRes CreateSessionResponse
		if _, err := Call(fss, "CreateSession", &CreateSessionRequest{
			Role:        "server",
			Export:      req.Export,
			Upstream:    upstreams[i],
			Suite:       req.Suite,
			CertPEM:     hostCertPEM,
			KeyPEM:      hostKeyPEM,
			CAPEM:       caPEM,
			Gridmap:     gm,
			Accounts:    accounts,
			FineGrained: req.FineGrained,
		}, d.cfg.Credential, d.cfg.Roots, &srvRes); err != nil {
			rollback()
			return &FaultResponse{Reason: fmt.Sprintf("server FSS %s: %v", fss, err)}
		}
		serverIDs = append(serverIDs, srvRes.ID)
		serverAddrs = append(serverAddrs, srvRes.Addr)
	}

	// 2. Client-side proxy via the client FSS, configured with the
	// user's delegated proxy credential so the channel authenticates
	// as the user.
	creq := &CreateSessionRequest{
		Role:      "client",
		Export:    req.Export,
		Suite:     req.Suite,
		CertPEM:   req.ProxyCertPEM,
		KeyPEM:    req.ProxyKeyPEM,
		CAPEM:     caPEM,
		DiskCache: req.DiskCache,
	}
	if replicated {
		creq.Servers = serverAddrs
		creq.ReplicaCount = req.ReplicaCount
		creq.Quorum = req.Quorum
	} else {
		creq.Server = serverAddrs[0]
	}
	var cliRes CreateSessionResponse
	if _, err := Call(req.ClientFSS, "CreateSession", creq,
		d.cfg.Credential, d.cfg.Roots, &cliRes); err != nil {
		rollback()
		return &FaultResponse{Reason: "client FSS: " + err.Error()}
	}

	res := &ScheduleSessionResponse{
		ServerID:   serverIDs[0],
		ClientID:   cliRes.ID,
		MountAddr:  cliRes.Addr,
		ServerAddr: serverAddrs[0],
	}
	if replicated {
		res.ServerIDs = serverIDs
		res.ServerAddrs = serverAddrs
	}
	return res
}

// credentialPEM renders a credential's chain and key as PEM strings.
func credentialPEM(cred *gridsec.Credential) (certPEM, keyPEM string, err error) {
	dir, err := os.MkdirTemp("", "sgfs-dss-pem-*")
	if err != nil {
		return "", "", err
	}
	defer os.RemoveAll(dir)
	cp, kp := dir+"/c.pem", dir+"/k.pem"
	if err := cred.SavePEM(cp, kp); err != nil {
		return "", "", err
	}
	c, err := os.ReadFile(cp)
	if err != nil {
		return "", "", err
	}
	k, err := os.ReadFile(kp)
	if err != nil {
		return "", "", err
	}
	return string(c), string(k), nil
}
