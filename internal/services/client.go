package services

import (
	"bytes"
	"crypto/x509"
	"fmt"
	"io"
	"net/http"

	"repro/internal/gridsec"
	"repro/internal/soapmsg"
)

// Call sends a signed SOAP request to a service endpoint and returns
// the verified response body with the responder's DN. A FaultResponse
// body is converted into an error.
func Call(url, action string, req any, cred *gridsec.Credential, roots *x509.CertPool, out any) (responderDN string, err error) {
	body, err := soapmsg.MarshalBody(req)
	if err != nil {
		return "", err
	}
	env, err := soapmsg.Sign(action, body, cred)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(url, "application/soap+xml", bytes.NewReader(env))
	if err != nil {
		return "", fmt.Errorf("services: post %s: %w", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("services: %s returned %s: %s", url, resp.Status, data)
	}
	_, resBody, dn, err := soapmsg.Verify(data, roots)
	if err != nil {
		return "", fmt.Errorf("services: verify response: %w", err)
	}
	var fault FaultResponse
	if soapmsg.UnmarshalBody(resBody, &fault) == nil && fault.Reason != "" {
		return dn, fmt.Errorf("services: fault from %s: %s", url, fault.Reason)
	}
	if out != nil {
		if err := soapmsg.UnmarshalBody(resBody, out); err != nil {
			return dn, fmt.Errorf("services: decode response: %w", err)
		}
	}
	return dn, nil
}
