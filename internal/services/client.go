package services

import (
	"bytes"
	"crypto/x509"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/gridsec"
	"repro/internal/soapmsg"
)

// Session-setup calls cross WANs to FSS/DSS endpoints that may be
// partitioned, overloaded, or black-holed. Every exchange is bounded:
// connection establishment, waiting for response headers, and the
// whole request each get a deadline, so a stalled listener becomes an
// error the scheduler can act on (roll back, try another node)
// instead of a hang that wedges session creation.
const (
	dialTimeout    = 10 * time.Second
	respTimeout    = 30 * time.Second
	requestTimeout = 60 * time.Second
)

// newHTTPClient builds the deadlined client used for service calls;
// the parameters are injectable so tests can shrink them.
func newHTTPClient(dial, header, total time.Duration) *http.Client {
	return &http.Client{
		Timeout: total,
		Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: dial}).DialContext,
			TLSHandshakeTimeout:   dial,
			ResponseHeaderTimeout: header,
		},
	}
}

var httpClient = newHTTPClient(dialTimeout, respTimeout, requestTimeout)

// Call sends a signed SOAP request to a service endpoint and returns
// the verified response body with the responder's DN. A FaultResponse
// body is converted into an error.
func Call(url, action string, req any, cred *gridsec.Credential, roots *x509.CertPool, out any) (responderDN string, err error) {
	return call(httpClient, url, action, req, cred, roots, out)
}

func call(client *http.Client, url, action string, req any, cred *gridsec.Credential, roots *x509.CertPool, out any) (responderDN string, err error) {
	body, err := soapmsg.MarshalBody(req)
	if err != nil {
		return "", err
	}
	env, err := soapmsg.Sign(action, body, cred)
	if err != nil {
		return "", err
	}
	resp, err := client.Post(url, "application/soap+xml", bytes.NewReader(env))
	if err != nil {
		return "", fmt.Errorf("services: post %s: %w", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("services: %s returned %s: %s", url, resp.Status, data)
	}
	_, resBody, dn, err := soapmsg.Verify(data, roots)
	if err != nil {
		return "", fmt.Errorf("services: verify response: %w", err)
	}
	var fault FaultResponse
	if soapmsg.UnmarshalBody(resBody, &fault) == nil && fault.Reason != "" {
		return dn, fmt.Errorf("services: fault from %s: %s", url, fault.Reason)
	}
	if out != nil {
		if err := soapmsg.UnmarshalBody(resBody, out); err != nil {
			return dn, fmt.Errorf("services: decode response: %w", err)
		}
	}
	return dn, nil
}
