package services

import "repro/internal/placement"

// The management plane re-exports the placement layer: the DSS
// schedules replicated sessions with the same deterministic rendezvous
// placement the client proxies use on the data path, so scheduler and
// proxy always agree on which backends hold which block groups. The
// algorithm itself lives in internal/placement, a leaf package, because
// the proxy (which core depends on, which this package depends on)
// needs it too.

// Placement maps file block ranges onto ordered replica sets of
// backends. See internal/placement.
type Placement = placement.Placement

// BackendInfo describes one replica backend (a server-side proxy
// endpoint).
type BackendInfo = placement.BackendInfo

// NewPlacement builds a validated placement over backends. replicas
// and quorum of 0 select the defaults.
func NewPlacement(backends []BackendInfo, replicas, quorum int) (*Placement, error) {
	return placement.New(backends, replicas, quorum)
}
