package services

import (
	"fmt"
	"testing"
)

func testBackends(n int) []BackendInfo {
	bs := make([]BackendInfo, n)
	for i := range bs {
		bs[i] = BackendInfo{ID: i, Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}
	}
	return bs
}

func TestPlacementDefaults(t *testing.T) {
	p, err := NewPlacement(testBackends(5), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Replicas != 3 || p.Quorum != 2 || p.GroupBlocks != 64 {
		t.Fatalf("defaults: replicas=%d quorum=%d group=%d", p.Replicas, p.Quorum, p.GroupBlocks)
	}
	// Fewer backends than the default replica count clamps k.
	p2, err := NewPlacement(testBackends(2), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Replicas != 2 || p2.Quorum != 2 {
		t.Fatalf("clamped defaults: replicas=%d quorum=%d", p2.Replicas, p2.Quorum)
	}
}

func TestPlacementValidation(t *testing.T) {
	if _, err := NewPlacement(nil, 0, 0); err == nil {
		t.Fatal("empty backend list accepted")
	}
	if _, err := NewPlacement(testBackends(3), 4, 0); err == nil {
		t.Fatal("replicas > backends accepted")
	}
	if _, err := NewPlacement(testBackends(3), 2, 3); err == nil {
		t.Fatal("quorum > replicas accepted")
	}
	dup := testBackends(3)
	dup[2].ID = 0
	if _, err := NewPlacement(dup, 0, 0); err == nil {
		t.Fatal("duplicate backend id accepted")
	}
}

func TestPlacementDeterministicAndOrdered(t *testing.T) {
	p, err := NewPlacement(testBackends(5), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	fh := []byte("some-file-handle")
	a := p.ReplicasFor(fh, 10)
	b := p.ReplicasFor(fh, 10)
	if len(a) != 3 {
		t.Fatalf("replica set size %d, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement not deterministic: %v vs %v", a, b)
		}
	}
	seen := map[int]bool{}
	for _, id := range a {
		if id < 0 || id >= 5 {
			t.Fatalf("backend id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("duplicate backend %d in replica set %v", id, a)
		}
		seen[id] = true
	}
}

func TestPlacementGroupsShareReplicaSet(t *testing.T) {
	p, _ := NewPlacement(testBackends(5), 3, 2)
	fh := []byte("grouped")
	// Blocks within one group map identically; the group boundary may
	// change the set.
	base := p.ReplicasFor(fh, 0)
	for blk := uint64(1); blk < p.GroupBlocks; blk++ {
		got := p.ReplicasFor(fh, blk)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("block %d left its placement group: %v vs %v", blk, got, base)
			}
		}
	}
}

func TestPlacementSpreadsLoad(t *testing.T) {
	p, _ := NewPlacement(testBackends(5), 3, 2)
	primary := make(map[int]int)
	for f := 0; f < 200; f++ {
		fh := []byte(fmt.Sprintf("file-%d", f))
		primary[p.ReplicasFor(fh, 0)[0]]++
	}
	// Every backend should lead some placement; rendezvous hashing over
	// 200 files makes a zero count astronomically unlikely.
	for id := 0; id < 5; id++ {
		if primary[id] == 0 {
			t.Fatalf("backend %d is never primary: %v", id, primary)
		}
	}
}

func TestPlacementCovers(t *testing.T) {
	p, _ := NewPlacement(testBackends(4), 2, 1)
	fh := []byte("covered")
	set := p.ReplicasFor(fh, 0)
	in := map[int]bool{}
	for _, id := range set {
		in[id] = true
	}
	for id := 0; id < 4; id++ {
		if p.Covers(fh, 0, id) != in[id] {
			t.Fatalf("Covers(%d) = %v, set %v", id, !in[id], set)
		}
	}
}
