package services

import (
	"context"
	"crypto/rand"
	"crypto/x509"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/gridsec"
	"repro/internal/soapmsg"
)

// FSSConfig configures a File System Service.
type FSSConfig struct {
	// Credential signs the FSS's responses and outbound calls.
	Credential *gridsec.Credential
	// Roots anchors verification of incoming messages.
	Roots *x509.CertPool
	// Authorize vets the signer DN of each request; nil admits any DN
	// with a trusted certificate.
	Authorize func(dn string) bool
	// WorkDir holds per-session credential and gridmap files. A temp
	// directory is created when empty.
	WorkDir string
}

// FSS is the per-host File System Service: it starts, configures and
// destroys the SGFS proxy sessions on its host on behalf of
// authorized (WS-Security authenticated) callers.
type FSS struct {
	cfg FSSConfig

	mu       sync.Mutex
	sessions map[string]*fssSession
}

type fssSession struct {
	role   core.Role
	server *core.ServerSession
	client *core.ClientSession
	dir    string
}

// NewFSS creates a service instance.
func NewFSS(cfg FSSConfig) (*FSS, error) {
	if cfg.Credential == nil || cfg.Roots == nil {
		return nil, fmt.Errorf("services: FSS requires credential and roots")
	}
	if cfg.WorkDir == "" {
		dir, err := os.MkdirTemp("", "sgfs-fss-*")
		if err != nil {
			return nil, err
		}
		cfg.WorkDir = dir
	}
	return &FSS{cfg: cfg, sessions: make(map[string]*fssSession)}, nil
}

// Close destroys all sessions.
func (f *FSS) Close() {
	f.mu.Lock()
	sessions := f.sessions
	f.sessions = make(map[string]*fssSession)
	f.mu.Unlock()
	for _, s := range sessions {
		s.close()
	}
}

func (s *fssSession) close() {
	if s.server != nil {
		s.server.Close()
	}
	if s.client != nil {
		s.client.Close()
	}
	if s.dir != "" {
		os.RemoveAll(s.dir)
	}
}

// ServeHTTP implements the SOAP endpoint.
func (f *FSS) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		http.Error(w, "read", http.StatusBadRequest)
		return
	}
	action, body, dn, err := soapmsg.Verify(data, f.cfg.Roots)
	if err != nil {
		f.reply(w, &FaultResponse{Reason: "authentication failed: " + err.Error()})
		return
	}
	if f.cfg.Authorize != nil && !f.cfg.Authorize(dn) {
		f.reply(w, &FaultResponse{Reason: "authorization denied for " + dn})
		return
	}
	res := f.dispatch(action, body)
	f.reply(w, res)
}

func (f *FSS) reply(w http.ResponseWriter, v any) {
	body, err := soapmsg.MarshalBody(v)
	if err != nil {
		http.Error(w, "marshal", http.StatusInternalServerError)
		return
	}
	env, err := soapmsg.Sign("Response", body, f.cfg.Credential)
	if err != nil {
		http.Error(w, "sign", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/soap+xml")
	w.Write(env)
}

func (f *FSS) dispatch(action string, body []byte) any {
	switch action {
	case "CreateSession":
		var req CreateSessionRequest
		if err := soapmsg.UnmarshalBody(body, &req); err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		return f.createSession(&req)
	case "DestroySession":
		var req DestroySessionRequest
		if err := soapmsg.UnmarshalBody(body, &req); err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		return f.destroySession(req.ID)
	case "RekeySession":
		var req RekeySessionRequest
		if err := soapmsg.UnmarshalBody(body, &req); err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		return f.withSession(req.ID, func(s *fssSession) any {
			if s.client == nil {
				return &FaultResponse{Reason: "not a client session"}
			}
			if err := s.client.Rekey(); err != nil {
				return &FaultResponse{Reason: err.Error()}
			}
			return &OKResponse{}
		})
	case "FlushSession":
		var req FlushSessionRequest
		if err := soapmsg.UnmarshalBody(body, &req); err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		return f.withSession(req.ID, func(s *fssSession) any {
			if s.client == nil {
				return &FaultResponse{Reason: "not a client session"}
			}
			if err := s.client.Flush(context.Background()); err != nil {
				return &FaultResponse{Reason: err.Error()}
			}
			return &OKResponse{}
		})
	case "ReconfigureSession":
		var req ReconfigureSessionRequest
		if err := soapmsg.UnmarshalBody(body, &req); err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		return f.reconfigure(&req)
	case "SetACL":
		var req SetACLRequest
		if err := soapmsg.UnmarshalBody(body, &req); err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		return f.setACL(&req)
	default:
		return &FaultResponse{Reason: "unknown action " + action}
	}
}

func (f *FSS) withSession(id string, fn func(*fssSession) any) any {
	f.mu.Lock()
	s, ok := f.sessions[id]
	f.mu.Unlock()
	if !ok {
		return &FaultResponse{Reason: "no session " + id}
	}
	return fn(s)
}

func newSessionID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

func (f *FSS) createSession(req *CreateSessionRequest) any {
	id := newSessionID()
	dir := filepath.Join(f.cfg.WorkDir, "sess-"+id)
	if err := os.MkdirAll(dir, 0700); err != nil {
		return &FaultResponse{Reason: err.Error()}
	}
	write := func(name, content string, mode os.FileMode) (string, error) {
		p := filepath.Join(dir, name)
		return p, os.WriteFile(p, []byte(content), mode)
	}
	certPath, err := write("cred.pem", req.CertPEM, 0644)
	if err != nil {
		return &FaultResponse{Reason: err.Error()}
	}
	keyPath, err := write("cred.key", req.KeyPEM, 0600)
	if err != nil {
		return &FaultResponse{Reason: err.Error()}
	}
	caPath, err := write("ca.pem", req.CAPEM, 0644)
	if err != nil {
		return &FaultResponse{Reason: err.Error()}
	}

	cfg := &core.Config{
		Role:        core.Role(req.Role),
		Export:      req.Export,
		Upstream:    req.Upstream,
		Server:      req.Server,
		Servers:     req.Servers,
		Replicas:    req.ReplicaCount,
		Quorum:      req.Quorum,
		HedgeDelay:  time.Duration(req.HedgeDelayMS) * time.Millisecond,
		Security:    req.Suite,
		CertPath:    certPath,
		KeyPath:     keyPath,
		CAPath:      caPath,
		FineGrained: req.FineGrained,
		CacheBytes:  4 << 30,
		BlockSize:   32 * 1024,
	}
	sess := &fssSession{role: cfg.Role, dir: dir}
	switch cfg.Role {
	case core.RoleServer:
		if req.Gridmap != "" {
			p, err := write("gridmap", req.Gridmap, 0644)
			if err != nil {
				return &FaultResponse{Reason: err.Error()}
			}
			cfg.GridmapPath = p
		}
		if req.Accounts != "" {
			p, err := write("accounts", req.Accounts, 0644)
			if err != nil {
				return &FaultResponse{Reason: err.Error()}
			}
			cfg.AccountsPath = p
		}
		srv, err := core.StartServerSession(cfg)
		if err != nil {
			os.RemoveAll(dir)
			return &FaultResponse{Reason: err.Error()}
		}
		sess.server = srv
		f.mu.Lock()
		f.sessions[id] = sess
		f.mu.Unlock()
		return &CreateSessionResponse{ID: id, Addr: srv.Addr()}
	case core.RoleClient:
		if req.DiskCache {
			cfg.CacheDir = filepath.Join(dir, "cache")
		}
		cli, err := core.StartClientSession(cfg)
		if err != nil {
			os.RemoveAll(dir)
			return &FaultResponse{Reason: err.Error()}
		}
		sess.client = cli
		f.mu.Lock()
		f.sessions[id] = sess
		f.mu.Unlock()
		return &CreateSessionResponse{ID: id, Addr: cli.Addr()}
	default:
		os.RemoveAll(dir)
		return &FaultResponse{Reason: "bad role " + req.Role}
	}
}

func (f *FSS) destroySession(id string) any {
	f.mu.Lock()
	s, ok := f.sessions[id]
	delete(f.sessions, id)
	f.mu.Unlock()
	if !ok {
		return &FaultResponse{Reason: "no session " + id}
	}
	s.close()
	return &OKResponse{}
}

func (f *FSS) reconfigure(req *ReconfigureSessionRequest) any {
	return f.withSession(req.ID, func(s *fssSession) any {
		if s.server == nil {
			return &FaultResponse{Reason: "not a server session"}
		}
		gmPath := filepath.Join(s.dir, "gridmap")
		if err := os.WriteFile(gmPath, []byte(req.Gridmap), 0644); err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		cfg := &core.Config{Role: core.RoleServer, GridmapPath: gmPath}
		if err := s.server.Reconfigure(cfg); err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		return &OKResponse{}
	})
}

func (f *FSS) setACL(req *SetACLRequest) any {
	return f.withSession(req.ID, func(s *fssSession) any {
		if s.server == nil {
			return &FaultResponse{Reason: "not a server session"}
		}
		a := acl.New()
		for _, e := range req.Entries {
			mask, err := acl.ParsePerm(e.Perm)
			if err != nil {
				return &FaultResponse{Reason: err.Error()}
			}
			a.Grant(e.DN, mask)
		}
		if err := s.server.Proxy().SetACL(context.Background(), req.Path, a); err != nil {
			return &FaultResponse{Reason: err.Error()}
		}
		return &OKResponse{}
	})
}
