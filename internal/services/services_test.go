package services

import (
	"context"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gridsec"
	"repro/internal/mountd"
	"repro/internal/nfs3"
	"repro/internal/nfsclient"
	"repro/internal/oncrpc"
	"repro/internal/vfs"
)

// testGrid is a full service deployment: CA, DSS, two FSSs, an NFS
// server, and user credentials.
type testGrid struct {
	ca      *gridsec.CA
	caPEM   string
	admin   *gridsec.Credential
	alice   *gridsec.Credential
	dssCred *gridsec.Credential
	fssCred *gridsec.Credential
	dss     *DSS
	dssURL  string
	fssURL  string // one FSS plays both client and server host
	fss     *FSS
	backend *vfs.MemFS
	nfsAddr string
}

func newGrid(t *testing.T) *testGrid {
	t.Helper()
	g := &testGrid{}
	var err error
	g.ca, err = gridsec.NewCA("Services Grid")
	if err != nil {
		t.Fatal(err)
	}
	caPath := filepath.Join(t.TempDir(), "ca.pem")
	g.ca.SaveCertPEM(caPath)
	caPEM, _ := os.ReadFile(caPath)
	g.caPEM = string(caPEM)
	g.admin, _ = g.ca.IssueUser("admin")
	g.alice, _ = g.ca.IssueUser("alice")
	g.dssCred, _ = g.ca.IssueHost("dss.grid")
	g.fssCred, _ = g.ca.IssueHost("fss.grid")

	// NFS backend.
	g.backend = vfs.NewMemFS()
	rpc := oncrpc.NewServer()
	nfs3.NewServer(g.backend, 5).Register(rpc)
	md := mountd.NewServer()
	md.AddExport(&mountd.Export{Path: "/GFS/alice", FS: g.backend})
	md.Register(rpc)
	nfsL, _ := net.Listen("tcp", "127.0.0.1:0")
	go rpc.Serve(nfsL)
	t.Cleanup(rpc.Close)
	g.nfsAddr = nfsL.Addr().String()

	// FSS: authorizes the DSS and admin.
	g.fss, err = NewFSS(FSSConfig{
		Credential: g.fssCred,
		Roots:      g.ca.Pool(),
		Authorize: func(dn string) bool {
			return dn == g.dssCred.DN() || dn == g.admin.DN()
		},
		WorkDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.fss.Close)
	fssSrv := httptest.NewServer(g.fss)
	t.Cleanup(fssSrv.Close)
	g.fssURL = fssSrv.URL

	// DSS.
	g.dss, err = NewDSS(DSSConfig{
		Credential:  g.dssCred,
		Roots:       g.ca.Pool(),
		Admins:      []string{g.admin.DN()},
		DBPath:      filepath.Join(t.TempDir(), "dss.json"),
		CABundlePEM: g.caPEM,
	})
	if err != nil {
		t.Fatal(err)
	}
	dssSrv := httptest.NewServer(g.dss)
	t.Cleanup(dssSrv.Close)
	g.dssURL = dssSrv.URL
	return g
}

func (g *testGrid) grantAlice(t *testing.T) {
	t.Helper()
	if _, err := Call(g.dssURL, "GrantAccess", &GrantAccessRequest{
		Export: "/GFS/alice", DN: g.alice.DN(), Account: "alice", UID: 5001, GID: 500,
	}, g.admin, g.ca.Pool(), nil); err != nil {
		t.Fatal(err)
	}
}

func (g *testGrid) schedule(t *testing.T) *ScheduleSessionResponse {
	t.Helper()
	proxy, err := g.alice.IssueProxy(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	certPEM, keyPEM, err := credentialPEM(proxy)
	if err != nil {
		t.Fatal(err)
	}
	var res ScheduleSessionResponse
	if _, err := Call(g.dssURL, "ScheduleSession", &ScheduleSessionRequest{
		Export:       "/GFS/alice",
		ServerFSS:    g.fssURL,
		ClientFSS:    g.fssURL,
		Upstream:     g.nfsAddr,
		Suite:        "aes",
		ProxyCertPEM: certPEM,
		ProxyKeyPEM:  keyPEM,
	}, g.alice, g.ca.Pool(), &res); err != nil {
		t.Fatal(err)
	}
	return &res
}

// newNFSBackend starts an extra NFS server exporting /GFS/alice, for
// replicated-session tests.
func newNFSBackend(t *testing.T, fsid uint64) (*vfs.MemFS, string) {
	t.Helper()
	be := vfs.NewMemFS()
	rpc := oncrpc.NewServer()
	nfs3.NewServer(be, fsid).Register(rpc)
	md := mountd.NewServer()
	md.AddExport(&mountd.Export{Path: "/GFS/alice", FS: be})
	md.Register(rpc)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rpc.Serve(l)
	t.Cleanup(rpc.Close)
	return be, l.Addr().String()
}

func TestScheduleReplicatedSessionEndToEnd(t *testing.T) {
	g := newGrid(t)
	g.grantAlice(t)
	be2, addr2 := newNFSBackend(t, 6)
	be3, addr3 := newNFSBackend(t, 7)
	backends := []*vfs.MemFS{g.backend, be2, be3}

	proxy, err := g.alice.IssueProxy(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	certPEM, keyPEM, err := credentialPEM(proxy)
	if err != nil {
		t.Fatal(err)
	}
	var res ScheduleSessionResponse
	if _, err := Call(g.dssURL, "ScheduleSession", &ScheduleSessionRequest{
		Export:       "/GFS/alice",
		ServerFSSs:   []string{g.fssURL, g.fssURL, g.fssURL},
		Upstreams:    []string{g.nfsAddr, addr2, addr3},
		ClientFSS:    g.fssURL,
		Suite:        "aes",
		ReplicaCount: 3,
		Quorum:       2,
		ProxyCertPEM: certPEM,
		ProxyKeyPEM:  keyPEM,
		DiskCache:    true,
	}, g.alice, g.ca.Pool(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.ServerIDs) != 3 || len(res.ServerAddrs) != 3 {
		t.Fatalf("got %d server IDs / %d addrs, want 3/3", len(res.ServerIDs), len(res.ServerAddrs))
	}
	if res.MountAddr == "" {
		t.Fatal("no mount address")
	}

	// Mount through the replicated session and write through the
	// write-back cache.
	ctx := context.Background()
	addr := res.MountAddr
	fs, err := nfsclient.Mount(ctx, func() (net.Conn, error) { return net.Dial("tcp", addr) },
		"/GFS/alice", nfsclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	payload := []byte("replicated via DSS and three FSS-scheduled proxies")
	f, err := fs.Create(ctx, "replicated.txt", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ctx, payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := Call(g.fssURL, "FlushSession", &FlushSessionRequest{ID: res.ClientID},
		g.admin, g.ca.Pool(), nil); err != nil {
		t.Fatal(err)
	}

	// The flush acks at quorum (2 of 3); the straggler leg drains in
	// the background, so poll each backend for convergence.
	for i, be := range backends {
		var got []byte
		deadline := time.Now().Add(10 * time.Second)
		for {
			if h, _, err := be.Lookup(be.Root(), "replicated.txt"); err == nil {
				buf := make([]byte, len(payload)+16)
				if n, _, err := be.Read(h, 0, buf); err == nil {
					got = buf[:n]
				}
			}
			if string(got) == string(payload) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("backend %d never converged: got %q", i, got)
			}
			time.Sleep(20 * time.Millisecond)
		}
		// Identity mapping applies on every replica.
		if _, attr, err := be.Lookup(be.Root(), "replicated.txt"); err != nil || attr.UID != 5001 {
			t.Fatalf("backend %d: uid %d err %v, want 5001", i, attr.UID, err)
		}
	}

	for _, id := range append([]string{res.ClientID}, res.ServerIDs...) {
		if _, err := Call(g.fssURL, "DestroySession", &DestroySessionRequest{ID: id},
			g.admin, g.ca.Pool(), nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScheduleReplicatedRollsBackOnFailure(t *testing.T) {
	g := newGrid(t)
	g.grantAlice(t)
	proxy, _ := g.alice.IssueProxy(time.Hour)
	certPEM, keyPEM, _ := credentialPEM(proxy)

	// Second replica's FSS endpoint is dead: the whole schedule must
	// fault and the session created on the first FSS must be rolled
	// back, not leaked as a half-provisioned replica set.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + l.Addr().String()
	l.Close()
	if _, err := Call(g.dssURL, "ScheduleSession", &ScheduleSessionRequest{
		Export:       "/GFS/alice",
		ServerFSSs:   []string{g.fssURL, dead},
		Upstreams:    []string{g.nfsAddr, g.nfsAddr},
		ClientFSS:    g.fssURL,
		Suite:        "aes",
		ProxyCertPEM: certPEM,
		ProxyKeyPEM:  keyPEM,
	}, g.alice, g.ca.Pool(), &ScheduleSessionResponse{}); err == nil {
		t.Fatal("schedule with a dead replica FSS succeeded")
	}
	g.fss.mu.Lock()
	leaked := len(g.fss.sessions)
	g.fss.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("rollback leaked %d sessions", leaked)
	}

	// Mismatched FSS/upstream lists fault before any session exists.
	if _, err := Call(g.dssURL, "ScheduleSession", &ScheduleSessionRequest{
		Export:       "/GFS/alice",
		ServerFSSs:   []string{g.fssURL, g.fssURL},
		Upstreams:    []string{g.nfsAddr},
		ClientFSS:    g.fssURL,
		Suite:        "aes",
		ProxyCertPEM: certPEM,
		ProxyKeyPEM:  keyPEM,
	}, g.alice, g.ca.Pool(), &ScheduleSessionResponse{}); err == nil {
		t.Fatal("schedule with mismatched upstream list succeeded")
	}
}

func TestGrantRequiresAdmin(t *testing.T) {
	g := newGrid(t)
	_, err := Call(g.dssURL, "GrantAccess", &GrantAccessRequest{
		Export: "/GFS/alice", DN: g.alice.DN(), Account: "alice",
	}, g.alice, g.ca.Pool(), nil)
	if err == nil {
		t.Fatal("non-admin grant succeeded")
	}
}

func TestScheduleDeniedWithoutGrant(t *testing.T) {
	g := newGrid(t)
	proxy, _ := g.alice.IssueProxy(time.Hour)
	certPEM, keyPEM, _ := credentialPEM(proxy)
	var res ScheduleSessionResponse
	_, err := Call(g.dssURL, "ScheduleSession", &ScheduleSessionRequest{
		Export: "/GFS/alice", ServerFSS: g.fssURL, ClientFSS: g.fssURL,
		Upstream: g.nfsAddr, Suite: "aes",
		ProxyCertPEM: certPEM, ProxyKeyPEM: keyPEM,
	}, g.alice, g.ca.Pool(), &res)
	if err == nil {
		t.Fatal("unauthorized schedule succeeded")
	}
}

func TestScheduleSessionEndToEnd(t *testing.T) {
	g := newGrid(t)
	g.grantAlice(t)
	res := g.schedule(t)
	if res.MountAddr == "" {
		t.Fatal("no mount address")
	}

	// Mount through the scheduled session and do real I/O.
	ctx := context.Background()
	addr := res.MountAddr
	fs, err := nfsclient.Mount(ctx, func() (net.Conn, error) { return net.Dial("tcp", addr) },
		"/GFS/alice", nfsclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, err := fs.Create(ctx, "scheduled.txt", 0644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(ctx, []byte("via DSS and FSS"))
	if err := f.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Flush via the management service, then verify server-side
	// content and identity mapping.
	if _, err := Call(g.fssURL, "FlushSession", &FlushSessionRequest{ID: res.ClientID},
		g.admin, g.ca.Pool(), nil); err != nil {
		t.Fatal(err)
	}
	h, attr, err := g.backend.Lookup(g.backend.Root(), "scheduled.txt")
	_ = h
	if err != nil {
		t.Fatal(err)
	}
	if attr.UID != 5001 {
		t.Fatalf("mapped uid %d, want 5001", attr.UID)
	}

	// Rekey through the service.
	if _, err := Call(g.fssURL, "RekeySession", &RekeySessionRequest{ID: res.ClientID},
		g.admin, g.ca.Pool(), nil); err != nil {
		t.Fatal(err)
	}

	// Destroy both sessions.
	for _, id := range []string{res.ClientID, res.ServerID} {
		if _, err := Call(g.fssURL, "DestroySession", &DestroySessionRequest{ID: id},
			g.admin, g.ca.Pool(), nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFSSRejectsUnauthorizedCaller(t *testing.T) {
	g := newGrid(t)
	_, err := Call(g.fssURL, "CreateSession", &CreateSessionRequest{Role: "client"},
		g.alice /* not authorized on FSS */, g.ca.Pool(), nil)
	if err == nil {
		t.Fatal("unauthorized FSS call succeeded")
	}
}

func TestDSSDatabasePersistence(t *testing.T) {
	dir := t.TempDir()
	ca, _ := gridsec.NewCA("P")
	cred, _ := ca.IssueHost("dss")
	dbPath := filepath.Join(dir, "db.json")
	d1, err := NewDSS(DSSConfig{Credential: cred, Roots: ca.Pool(), DBPath: dbPath, CABundlePEM: "x"})
	if err != nil {
		t.Fatal(err)
	}
	d1.mu.Lock()
	d1.db["/e"] = map[string]accessEntry{"/CN=u": {Account: "u", UID: 1, GID: 2}}
	if err := d1.persist(); err != nil {
		t.Fatal(err)
	}
	d1.mu.Unlock()
	d2, err := NewDSS(DSSConfig{Credential: cred, Roots: ca.Pool(), DBPath: dbPath, CABundlePEM: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := d2.db["/e"]["/CN=u"]; !ok || e.UID != 1 {
		t.Fatal("database did not persist")
	}
}

func TestFSSSetACLAndReconfigure(t *testing.T) {
	g := newGrid(t)
	g.grantAlice(t)
	res := g.schedule(t)

	// Install a fine-grained ACL through the management plane. The
	// session was created without FineGrained, but SetACL still writes
	// the ACL file; enforcement needs a fine-grained session, so here
	// we only verify the operation plumbs through and the ACL file
	// lands on the server backend.
	_, err := Call(g.fssURL, "SetACL", &SetACLRequest{
		ID:   res.ServerID,
		Path: "shared.bin",
		Entries: []ACLEntryXML{
			{DN: g.alice.DN(), Perm: "rw"},
		},
	}, g.admin, g.ca.Pool(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.backend.Lookup(g.backend.Root(), ".shared.bin.acl"); err != nil {
		t.Fatalf("ACL file not created on backend: %v", err)
	}

	// Reconfigure the server session's gridmap live.
	bob, _ := g.ca.IssueUser("bob")
	newGridmap := "\"" + g.alice.DN() + "\" alice\n\"" + bob.DN() + "\" alice\n"
	if _, err := Call(g.fssURL, "ReconfigureSession", &ReconfigureSessionRequest{
		ID:      res.ServerID,
		Gridmap: newGridmap,
	}, g.admin, g.ca.Pool(), nil); err != nil {
		t.Fatal(err)
	}

	// Operations against the wrong session kind fault cleanly.
	if _, err := Call(g.fssURL, "SetACL", &SetACLRequest{ID: res.ClientID, Path: "x"},
		g.admin, g.ca.Pool(), nil); err == nil {
		t.Fatal("SetACL on a client session succeeded")
	}
	if _, err := Call(g.fssURL, "RekeySession", &RekeySessionRequest{ID: res.ServerID},
		g.admin, g.ca.Pool(), nil); err == nil {
		t.Fatal("Rekey on a server session succeeded")
	}
	if _, err := Call(g.fssURL, "DestroySession", &DestroySessionRequest{ID: "nonexistent"},
		g.admin, g.ca.Pool(), nil); err == nil {
		t.Fatal("destroy of unknown session succeeded")
	}
}

func TestRevokeAccess(t *testing.T) {
	g := newGrid(t)
	g.grantAlice(t)
	if _, err := Call(g.dssURL, "RevokeAccess", &RevokeAccessRequest{
		Export: "/GFS/alice", DN: g.alice.DN(),
	}, g.admin, g.ca.Pool(), nil); err != nil {
		t.Fatal(err)
	}
	// Scheduling must now fail.
	proxy, _ := g.alice.IssueProxy(time.Hour)
	certPEM, keyPEM, _ := credentialPEM(proxy)
	_, err := Call(g.dssURL, "ScheduleSession", &ScheduleSessionRequest{
		Export: "/GFS/alice", ServerFSS: g.fssURL, ClientFSS: g.fssURL,
		Upstream: g.nfsAddr, Suite: "aes",
		ProxyCertPEM: certPEM, ProxyKeyPEM: keyPEM,
	}, g.alice, g.ca.Pool(), &ScheduleSessionResponse{})
	if err == nil {
		t.Fatal("revoked user scheduled a session")
	}
}

func TestDSSUnknownAction(t *testing.T) {
	g := newGrid(t)
	if _, err := Call(g.dssURL, "FrobnicateGrid", &GrantAccessRequest{}, g.admin, g.ca.Pool(), nil); err == nil {
		t.Fatal("unknown action accepted")
	}
}

func TestCASAuthorizerHook(t *testing.T) {
	// A dedicated community authorization service supplants the DSS
	// database (§4.4).
	ca, _ := gridsec.NewCA("CAS Grid")
	cred, _ := ca.IssueHost("dss")
	alice, _ := ca.IssueUser("alice")
	d, err := NewDSS(DSSConfig{
		Credential:  cred,
		Roots:       ca.Pool(),
		CABundlePEM: "x",
		Authorizer: func(export, dn string) (string, uint32, uint32, bool) {
			return "casacct", 7, 8, dn == alice.DN() && export == "/GFS/cas"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := d.lookupAccess("/GFS/cas", alice.DN()); !ok || e.Account != "casacct" {
		t.Fatalf("CAS grant: %+v %v", e, ok)
	}
	if _, ok := d.lookupAccess("/GFS/other", alice.DN()); ok {
		t.Fatal("CAS authorized the wrong export")
	}
}
