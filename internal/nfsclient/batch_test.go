package nfsclient

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
)

// seedTree creates d1/d2/f0..f(n-1) plus a top-level root.txt through
// fs and returns the deep paths.
func seedTree(t *testing.T, fs *FileSystem, n int) []string {
	t.Helper()
	ctx := context.Background()
	if err := fs.MkdirAll(ctx, "d1/d2", 0755); err != nil {
		t.Fatal(err)
	}
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("d1/d2/f%d", i)
		f, err := fs.Create(ctx, p, 0644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(ctx, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(ctx); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return paths
}

func TestBatchStatColdCache(t *testing.T) {
	dial, _ := startServer(t)
	seedTree(t, mountFS(t, dial, Options{}), 10)

	// A second mount sees the tree with cold name/attr caches, so
	// every component LOOKUP and every GETATTR goes to the wire — the
	// batch path must pipeline them, not serialize.
	fs := mountFS(t, dial, Options{})
	var stats metrics.ChannelStats
	fs.proto.rpc.SetStats(&stats)
	ctx := context.Background()

	var paths []string
	for i := 0; i < 10; i++ {
		paths = append(paths, fmt.Sprintf("d1/d2/f%d", i))
	}
	paths = append(paths, "d1/nope/missing")

	res := fs.BatchStat(ctx, paths)
	if len(res) != len(paths) {
		t.Fatalf("got %d results for %d paths", len(res), len(paths))
	}
	for i := 0; i < 10; i++ {
		if res[i].Err != nil {
			t.Fatalf("%s: %v", paths[i], res[i].Err)
		}
		want, err := fs.Stat(ctx, paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if res[i].Attr.Size != want.Size || res[i].Attr.FileID != want.FileID {
			t.Fatalf("%s: batch attr %+v != stat attr %+v", paths[i], res[i].Attr, want)
		}
		if res[i].Attr.Size != uint64(len(fmt.Sprintf("payload-%d", i))) {
			t.Fatalf("%s: size %d", paths[i], res[i].Attr.Size)
		}
	}
	if res[10].Err == nil {
		t.Fatal("missing path did not fail its slot")
	}
	if snap := stats.Snapshot(); snap.InflightHWM < 2 {
		t.Fatalf("batch stat never pipelined: in-flight HWM %d", snap.InflightHWM)
	}
}

func TestReadDirStat(t *testing.T) {
	dial, _ := startServer(t)
	seedTree(t, mountFS(t, dial, Options{}), 6)

	fs := mountFS(t, dial, Options{})
	ctx := context.Background()
	entries, err := fs.ReadDirStat(ctx, "d1/d2")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("got %d entries", len(entries))
	}
	for _, e := range entries {
		if !e.Attr.Present {
			t.Fatalf("%s: no attributes after ReadDirStat", e.Name)
		}
		var i int
		if _, err := fmt.Sscanf(e.Name, "f%d", &i); err != nil {
			t.Fatalf("unexpected entry %q", e.Name)
		}
		if want := uint64(len(fmt.Sprintf("payload-%d", i))); e.Attr.Attr.Size != want {
			t.Fatalf("%s: size %d want %d", e.Name, e.Attr.Attr.Size, want)
		}
	}
}

func TestRevalidateDropsChangedPages(t *testing.T) {
	dial, _ := startServer(t)
	writer := mountFS(t, dial, Options{})
	reader := mountFS(t, dial, Options{AttrTimeout: time.Nanosecond})
	ctx := context.Background()

	// Populate the file and the reader's page cache + version record.
	f, err := writer.Create(ctx, "r.txt", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ctx, []byte("old-contents")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(ctx); err != nil {
		t.Fatal(err)
	}
	rf, err := reader.Open(ctx, "r.txt")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := rf.Read(ctx, buf); err != nil && err.Error() != "EOF" {
		_ = err // short file EOF is fine
	}
	if err := rf.Close(ctx); err != nil {
		t.Fatal(err)
	}
	fh, err := reader.walk(ctx, "r.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reader.pages.Get(fh, 0); !ok {
		t.Fatal("reader page cache not populated")
	}

	// No upstream change: revalidation must not disturb anything.
	changed, err := reader.Revalidate(ctx, []string{"r.txt"})
	if err != nil || changed != 0 {
		t.Fatalf("clean revalidate: changed=%d err=%v", changed, err)
	}
	if _, ok := reader.pages.Get(fh, 0); !ok {
		t.Fatal("clean revalidate dropped fresh pages")
	}

	// Another client rewrites the file (different size so the version
	// comparison cannot be defeated by mtime granularity).
	wf, err := writer.OpenFile(ctx, "r.txt", OWrite|OTrunc, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write(ctx, []byte("NEW")); err != nil {
		t.Fatal(err)
	}
	if err := wf.Close(ctx); err != nil {
		t.Fatal(err)
	}

	changed, err = reader.Revalidate(ctx, []string{"r.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 {
		t.Fatalf("changed = %d, want 1", changed)
	}
	if _, ok := reader.pages.Get(fh, 0); ok {
		t.Fatal("stale pages survived revalidation")
	}
}
