package nfsclient

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/nfs3"
	"repro/internal/singleflight"
	"repro/internal/vfs"
)

// Options tunes the mounted file system. Zero values select the
// defaults noted on each field.
type Options struct {
	// BlockSize is the read/write transfer size (default 32 KiB, the
	// paper's experimental setting).
	BlockSize int
	// CacheBytes bounds the memory page cache (default 32 MiB —
	// scaled from the paper's 256 MB client against a 512 MB file).
	CacheBytes int64
	// AttrTimeout is the attribute/name cache freshness window
	// (default 3 s, matching typical acregmin).
	AttrTimeout time.Duration
	// Readahead is the number of blocks prefetched on sequential
	// reads (default 2; 0 disables).
	Readahead int
	// WriteBehind delays writes in the page cache until Close/Sync or
	// pressure (default true, matching "write delay" in the paper's
	// export options). When false every write goes to the server
	// synchronously (FILE_SYNC).
	WriteBehind bool
	// NoWriteBehind forces write-through; it exists so the zero value
	// of Options selects write-behind.
	NoWriteBehind bool
	// UID, GID and MachineName form the AUTH_SYS credential.
	UID, GID    uint32
	MachineName string
}

func (o Options) withDefaults() Options {
	if o.BlockSize == 0 {
		o.BlockSize = 32 * 1024
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 32 << 20
	}
	if o.AttrTimeout == 0 {
		o.AttrTimeout = 3 * time.Second
	}
	if o.Readahead == 0 {
		o.Readahead = 2
	}
	if o.MachineName == "" {
		o.MachineName = "client"
	}
	o.WriteBehind = !o.NoWriteBehind
	return o
}

// FileSystem is a mounted NFS file system with kernel-client-like
// caching. All methods are safe for concurrent use.
type FileSystem struct {
	proto *Proto
	root  nfs3.FH3
	opt   Options

	attrs *attrCache
	names *nameCache
	pages *pageCache

	// openVersions records the (mtime, size) under which a file's
	// cached pages were populated, for close-to-open revalidation.
	verMu    sync.Mutex
	versions map[string]fileVersion

	// seqMu guards per-file sequential-read state for readahead.
	seqMu   sync.Mutex
	lastEnd map[string]uint64

	// sf dedups concurrent server READs of one block (demand readers
	// and prefetchers share one RPC); prefetch bounds how many
	// background readahead fetches run at once.
	sf       singleflight.Group[[]byte]
	prefetch *singleflight.Pool

	// flushMu guards flushErrs: the first write-back error per file
	// from cache-pressure eviction, surfaced by the next Sync/Close
	// instead of being silently dropped.
	flushMu   sync.Mutex
	flushErrs map[string]error

	rpcReads, rpcWrites uint64
	statMu              sync.Mutex
}

type fileVersion struct {
	mtime nfs3.NFSTime
	size  uint64
}

// Mount attaches to the export at path via dial and returns a caching
// file system. A second connection is used briefly for the MOUNT
// protocol.
func Mount(ctx context.Context, dial Dialer, path string, opt Options) (*FileSystem, error) {
	opt = opt.withDefaults()
	root, err := MountExport(ctx, dial, path)
	if err != nil {
		return nil, err
	}
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("nfsclient: dial nfs: %w", err)
	}
	proto := NewProto(conn)
	if err := proto.SetCred(opt.UID, opt.GID, opt.MachineName); err != nil {
		conn.Close()
		return nil, err
	}
	fs := &FileSystem{
		proto:     proto,
		root:      root,
		opt:       opt,
		attrs:     newAttrCache(opt.AttrTimeout),
		names:     newNameCache(opt.AttrTimeout),
		pages:     newPageCache(opt.CacheBytes),
		versions:  make(map[string]fileVersion),
		lastEnd:   make(map[string]uint64),
		flushErrs: make(map[string]error),
	}
	// Prime the root attributes and verify the server speaks NFSv3.
	if _, err := fs.getAttr(ctx, root); err != nil {
		proto.Close()
		return nil, fmt.Errorf("nfsclient: root getattr: %w", err)
	}
	if opt.Readahead > 0 {
		fs.prefetch = singleflight.NewPool(opt.Readahead)
	}
	return fs, nil
}

// Close flushes all dirty data and tears down the connection.
func (fs *FileSystem) Close() error {
	// Flush everything still dirty.
	fs.pages.mu.Lock()
	var fhs []string
	seen := map[string]bool{}
	for k, b := range fs.pages.blocks {
		if b.dirty && !seen[k.fh] {
			seen[k.fh] = true
			fhs = append(fhs, k.fh)
		}
	}
	fs.pages.mu.Unlock()
	// Files whose only trace of trouble is a sticky eviction write-back
	// error must surface it here even with no dirty blocks left.
	fs.flushMu.Lock()
	for k := range fs.flushErrs {
		if !seen[k] {
			seen[k] = true
			fhs = append(fhs, k)
		}
	}
	fs.flushMu.Unlock()
	// Bound the final write-back: Close must terminate even when the
	// server has gone away mid-session.
	ctx, cancel := context.WithTimeout(context.Background(), closeFlushTimeout)
	defer cancel()
	var firstErr error
	for _, key := range fhs {
		fh := nfs3.FH3{Data: []byte(key)}
		if err := fs.flushFile(ctx, fh); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := fs.proto.Close(); firstErr == nil {
		firstErr = err
	}
	if fs.prefetch != nil {
		// The transport is gone, so queued prefetches fail fast; Close
		// just drains the workers.
		fs.prefetch.Close()
	}
	return firstErr
}

// Root returns the root file handle.
func (fs *FileSystem) Root() nfs3.FH3 { return fs.root }

// Proto exposes the underlying protocol client (for tests and tools).
func (fs *FileSystem) Proto() *Proto { return fs.proto }

// RPCCounts reports the number of read and write RPCs issued.
func (fs *FileSystem) RPCCounts() (reads, writes uint64) {
	fs.statMu.Lock()
	defer fs.statMu.Unlock()
	return fs.rpcReads, fs.rpcWrites
}

// CacheStats reports page-cache hit/miss counters.
func (fs *FileSystem) CacheStats() (hits, misses uint64) {
	h, m, _ := fs.pages.Stats()
	return h, m
}

// getAttr returns attributes, consulting the cache first.
func (fs *FileSystem) getAttr(ctx context.Context, fh nfs3.FH3) (nfs3.Fattr3, error) {
	if a, ok := fs.attrs.Get(fh); ok {
		return a, nil
	}
	a, err := fs.proto.GetAttr(ctx, fh)
	if err != nil {
		return a, err
	}
	fs.attrs.Put(fh, a)
	return a, nil
}

// splitPath normalizes and splits a slash path.
func splitPath(path string) []string {
	var parts []string
	for _, p := range strings.Split(path, "/") {
		if p != "" && p != "." {
			parts = append(parts, p)
		}
	}
	return parts
}

// walk resolves path to a handle using the name cache.
func (fs *FileSystem) walk(ctx context.Context, path string) (nfs3.FH3, error) {
	cur := fs.root
	for _, name := range splitPath(path) {
		if fh, ok := fs.names.Get(cur, name); ok {
			cur = fh
			continue
		}
		fh, attr, err := fs.proto.Lookup(ctx, cur, name)
		if err != nil {
			return nfs3.FH3{}, err
		}
		fs.names.Put(cur, name, fh)
		fs.attrs.Put(fh, attr)
		cur = fh
	}
	return cur, nil
}

// walkParent resolves the parent directory of path and returns it with
// the final name component.
func (fs *FileSystem) walkParent(ctx context.Context, path string) (nfs3.FH3, string, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nfs3.FH3{}, "", vfs.ErrInval
	}
	dirParts := parts[:len(parts)-1]
	dir := fs.root
	var err error
	if len(dirParts) > 0 {
		dir, err = fs.walk(ctx, strings.Join(dirParts, "/"))
		if err != nil {
			return nfs3.FH3{}, "", err
		}
	}
	return dir, parts[len(parts)-1], nil
}

// Stat returns attributes for path.
func (fs *FileSystem) Stat(ctx context.Context, path string) (nfs3.Fattr3, error) {
	fh, err := fs.walk(ctx, path)
	if err != nil {
		return nfs3.Fattr3{}, err
	}
	return fs.getAttr(ctx, fh)
}

// Access returns the granted subset of mask for path.
func (fs *FileSystem) Access(ctx context.Context, path string, mask uint32) (uint32, error) {
	fh, err := fs.walk(ctx, path)
	if err != nil {
		return 0, err
	}
	return fs.proto.Access(ctx, fh, mask)
}

// Mkdir creates a directory.
func (fs *FileSystem) Mkdir(ctx context.Context, path string, mode uint32) error {
	dir, name, err := fs.walkParent(ctx, path)
	if err != nil {
		return err
	}
	fh, attr, err := fs.proto.Mkdir(ctx, dir, name, mode)
	if err != nil {
		return err
	}
	fs.names.Put(dir, name, fh)
	fs.attrs.Put(fh, attr)
	fs.attrs.Invalidate(dir)
	return nil
}

// MkdirAll creates path and any missing parents.
func (fs *FileSystem) MkdirAll(ctx context.Context, path string, mode uint32) error {
	parts := splitPath(path)
	for i := range parts {
		p := strings.Join(parts[:i+1], "/")
		err := fs.Mkdir(ctx, p, mode)
		if err != nil && !errors.Is(err, vfs.ErrExist) {
			return err
		}
	}
	return nil
}

// Remove unlinks the file at path, discarding any cached dirty blocks
// (they can never be observed again).
func (fs *FileSystem) Remove(ctx context.Context, path string) error {
	dir, name, err := fs.walkParent(ctx, path)
	if err != nil {
		return err
	}
	if fh, ok := fs.names.Get(dir, name); ok {
		fs.pages.DropFile(fh)
		fs.attrs.Invalidate(fh)
	}
	fs.names.Invalidate(dir, name)
	fs.attrs.Invalidate(dir)
	return fs.proto.Remove(ctx, dir, name)
}

// Rmdir removes an empty directory.
func (fs *FileSystem) Rmdir(ctx context.Context, path string) error {
	dir, name, err := fs.walkParent(ctx, path)
	if err != nil {
		return err
	}
	fs.names.Invalidate(dir, name)
	fs.attrs.Invalidate(dir)
	return fs.proto.Rmdir(ctx, dir, name)
}

// Rename moves oldPath to newPath.
func (fs *FileSystem) Rename(ctx context.Context, oldPath, newPath string) error {
	fromDir, fromName, err := fs.walkParent(ctx, oldPath)
	if err != nil {
		return err
	}
	toDir, toName, err := fs.walkParent(ctx, newPath)
	if err != nil {
		return err
	}
	fs.names.Invalidate(fromDir, fromName)
	fs.names.Invalidate(toDir, toName)
	fs.attrs.Invalidate(fromDir)
	fs.attrs.Invalidate(toDir)
	return fs.proto.Rename(ctx, fromDir, fromName, toDir, toName)
}

// Symlink creates a symbolic link at path pointing to target.
func (fs *FileSystem) Symlink(ctx context.Context, target, path string) error {
	dir, name, err := fs.walkParent(ctx, path)
	if err != nil {
		return err
	}
	_, err = fs.proto.Symlink(ctx, dir, name, target)
	fs.attrs.Invalidate(dir)
	return err
}

// ReadLink reads the target of the symlink at path.
func (fs *FileSystem) ReadLink(ctx context.Context, path string) (string, error) {
	fh, err := fs.walk(ctx, path)
	if err != nil {
		return "", err
	}
	return fs.proto.ReadLink(ctx, fh)
}

// Chmod changes permissions.
func (fs *FileSystem) Chmod(ctx context.Context, path string, mode uint32) error {
	fh, err := fs.walk(ctx, path)
	if err != nil {
		return err
	}
	fs.attrs.Invalidate(fh)
	return fs.proto.SetAttr(ctx, fh, nfs3.Sattr3{SetMode: true, Mode: mode})
}

// Truncate sets the file size.
func (fs *FileSystem) Truncate(ctx context.Context, path string, size uint64) error {
	fh, err := fs.walk(ctx, path)
	if err != nil {
		return err
	}
	fs.pages.DropFile(fh)
	fs.attrs.Invalidate(fh)
	return fs.proto.SetAttr(ctx, fh, nfs3.Sattr3{SetSize: true, Size: size})
}

// ReadDir lists the directory at path.
func (fs *FileSystem) ReadDir(ctx context.Context, path string) ([]nfs3.DirEntryPlus, error) {
	fh, err := fs.walk(ctx, path)
	if err != nil {
		return nil, err
	}
	var out []nfs3.DirEntryPlus
	var cookie uint64
	for {
		entries, eof, err := fs.proto.ReadDirPlus(ctx, fh, cookie)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			cookie = e.Cookie
			if e.Name == "." || e.Name == ".." {
				continue
			}
			if e.FH.Present {
				fs.names.Put(fh, e.Name, e.FH.FH)
				if e.Attr.Present {
					fs.attrs.Put(e.FH.FH, e.Attr.Attr)
				}
			}
			out = append(out, e)
		}
		if eof {
			return out, nil
		}
	}
}

// closeFlushTimeout bounds the final write-back in Close.
const closeFlushTimeout = 2 * time.Minute

// File flags for OpenFile.
const (
	ORdOnly = 0
	OWrite  = 1 << iota
	OCreate
	OTrunc
	OExcl
)

// File is an open file with cached I/O.
type File struct {
	fs   *FileSystem
	fh   nfs3.FH3
	path string

	mu     sync.Mutex
	offset int64
	size   int64
	closed bool
}

// Open opens an existing file read/write.
func (fs *FileSystem) Open(ctx context.Context, path string) (*File, error) {
	return fs.OpenFile(ctx, path, ORdOnly, 0)
}

// Create creates (or truncates) a file for writing.
func (fs *FileSystem) Create(ctx context.Context, path string, mode uint32) (*File, error) {
	return fs.OpenFile(ctx, path, OWrite|OCreate|OTrunc, mode)
}

// OpenFile opens path with the given flags. Open performs
// close-to-open consistency: the file's attributes are revalidated
// against the server and cached pages are discarded if the file
// changed since they were populated.
func (fs *FileSystem) OpenFile(ctx context.Context, path string, flags int, mode uint32) (*File, error) {
	dir, name, err := fs.walkParent(ctx, path)
	if err != nil {
		return nil, err
	}
	var fh nfs3.FH3
	var attr nfs3.Fattr3
	fh, attr, err = fs.proto.Lookup(ctx, dir, name)
	switch {
	case err == nil:
		if flags&OExcl != 0 {
			return nil, vfs.ErrExist
		}
		if flags&OTrunc != 0 {
			fs.pages.DropFile(fh)
			if err := fs.proto.SetAttr(ctx, fh, nfs3.Sattr3{SetSize: true}); err != nil {
				return nil, err
			}
			attr.Size = 0
		}
	case errors.Is(err, vfs.ErrNoEnt) && flags&OCreate != 0:
		if mode == 0 {
			mode = 0644
		}
		fh, attr, err = fs.proto.Create(ctx, dir, name, mode, flags&OExcl != 0)
		if err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	fs.names.Put(dir, name, fh)
	fs.attrs.Put(fh, attr)

	// Close-to-open: discard stale pages if the file changed.
	key := fhKey(fh)
	fs.verMu.Lock()
	prev, seen := fs.versions[key]
	cur := fileVersion{mtime: attr.Mtime, size: attr.Size}
	if seen && prev != cur {
		fs.pages.DropFile(fh)
	}
	fs.versions[key] = cur
	fs.verMu.Unlock()

	return &File{fs: fs, fh: fh, path: path, size: int64(attr.Size)}, nil
}

// Handle returns the file's NFS handle.
func (f *File) Handle() nfs3.FH3 { return f.fh }

// Size returns the file's current (locally known) size.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Stat returns fresh-enough attributes for the file.
func (f *File) Stat(ctx context.Context) (nfs3.Fattr3, error) {
	return f.fs.getAttr(ctx, f.fh)
}

// readBlock returns the given block, from cache or the server.
func (fs *FileSystem) readBlock(ctx context.Context, fh nfs3.FH3, block uint64) ([]byte, error) {
	if data, ok := fs.pages.Get(fh, block); ok {
		return data, nil
	}
	return fs.fetchBlock(ctx, fh, block)
}

// fetchBlock reads a block from the server through the single-flight
// group, so a demand read and a prefetch of the same block share one
// RPC. Callers must treat the returned slice as read-only.
func (fs *FileSystem) fetchBlock(ctx context.Context, fh nfs3.FH3, block uint64) ([]byte, error) {
	data, err, _ := fs.sf.Do(singleflight.Key(fh.Data, block), func() ([]byte, error) {
		// Re-check under the flight: the block may have landed between
		// the caller's miss and this flight winning the key.
		if data, ok := fs.pages.Get(fh, block); ok {
			return data, nil
		}
		bs := uint64(fs.opt.BlockSize)
		data, _, err := fs.proto.Read(ctx, fh, block*bs, uint32(bs))
		if err != nil {
			return nil, err
		}
		fs.statMu.Lock()
		fs.rpcReads++
		fs.statMu.Unlock()
		fs.insertClean(ctx, fh, block, data)
		return data, nil
	})
	return data, err
}

// insertClean puts a clean block in the cache and writes back any
// dirty blocks evicted by the insertion.
func (fs *FileSystem) insertClean(ctx context.Context, fh nfs3.FH3, block uint64, data []byte) {
	evicted := fs.pages.Put(fh, block, data, false)
	for _, b := range evicted {
		fs.writeBackBlock(ctx, b)
	}
}

//sgfsvet:hot-path
func (fs *FileSystem) writeBackBlock(ctx context.Context, b *cacheBlock) {
	fh := nfs3.FH3{Data: []byte(b.key.fh)}
	off := b.key.block * uint64(fs.opt.BlockSize)
	if _, err := fs.proto.Write(ctx, fh, off, b.data, nfs3.FileSync); err != nil {
		// The block was already evicted from the cache, so dropping
		// this error would silently lose the data. Record it; the
		// file's next Sync/Close surfaces it.
		fs.recordFlushErr(b.key.fh, err)
		return
	}
	fs.statMu.Lock()
	fs.rpcWrites++
	fs.statMu.Unlock()
}

// recordFlushErr keeps the first write-back error per file.
func (fs *FileSystem) recordFlushErr(key string, err error) {
	fs.flushMu.Lock()
	if _, ok := fs.flushErrs[key]; !ok {
		fs.flushErrs[key] = err
	}
	fs.flushMu.Unlock()
}

// takeFlushErr returns and clears the sticky write-back error for fh.
func (fs *FileSystem) takeFlushErr(fh nfs3.FH3) error {
	key := fhKey(fh)
	fs.flushMu.Lock()
	err := fs.flushErrs[key]
	delete(fs.flushErrs, key)
	fs.flushMu.Unlock()
	return err
}

// ReadAt reads len(p) bytes at offset off.
func (f *File) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	fs := f.fs
	bs := int64(fs.opt.BlockSize)
	attr, err := fs.getAttr(ctx, f.fh)
	if err != nil {
		return 0, err
	}
	size := int64(attr.Size)
	if f.Size() > size {
		size = f.Size() // locally extended under write-behind
	}
	if off >= size {
		return 0, io.EOF
	}
	if off+int64(len(p)) > size {
		p = p[:size-off]
	}
	read := 0
	for read < len(p) {
		pos := off + int64(read)
		block := uint64(pos / bs)
		inner := pos % bs
		data, err := fs.readBlock(ctx, f.fh, block)
		if err != nil {
			return read, err
		}
		n := 0
		if inner < int64(len(data)) {
			n = copy(p[read:], data[inner:])
		}
		// Zero-fill the remainder of this block: a hole, or a cached
		// block captured at an earlier, shorter EOF. Always advances
		// at least one byte, since inner < blockSize.
		zeroEnd := int64(block+1) * bs
		for read+n < len(p) && pos+int64(n) < zeroEnd {
			p[read+n] = 0
			n++
		}
		read += n
		fs.maybeReadahead(f.fh, block, uint64(size))
	}
	var eof error
	if off+int64(read) >= size {
		eof = io.EOF
	}
	return read, eof
}

// prefetchTimeout bounds one background readahead RPC. Prefetches run
// on a detached context: the read that hinted them may return (and
// cancel its own context) long before the prefetched bytes arrive.
const prefetchTimeout = 30 * time.Second

// maybeReadahead schedules background prefetches of the blocks after
// block when access is sequential. Hints are shed — never queued
// unboundedly — when the prefetch pool is saturated; the foreground
// read path fetches on demand anyway, through the same single-flight
// group, so a dropped hint costs latency, not correctness.
//
//sgfsvet:hot-path
func (fs *FileSystem) maybeReadahead(fh nfs3.FH3, block, size uint64) {
	if fs.opt.Readahead <= 0 || fs.prefetch == nil {
		return
	}
	key := fhKey(fh)
	fs.seqMu.Lock()
	sequential := fs.lastEnd[key] == block
	fs.lastEnd[key] = block + 1
	fs.seqMu.Unlock()
	if !sequential {
		return
	}
	bs := uint64(fs.opt.BlockSize)
	maxBlock := (size + bs - 1) / bs
	for i := 1; i <= fs.opt.Readahead; i++ {
		next := block + uint64(i)
		if next >= maxBlock {
			break
		}
		if _, ok := fs.pages.Get(fh, next); ok {
			continue
		}
		fs.prefetch.TryGo(func() { fs.prefetchBlock(fh, next) })
	}
}

// prefetchBlock fetches one readahead block on its own deadline.
func (fs *FileSystem) prefetchBlock(fh nfs3.FH3, block uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), prefetchTimeout)
	defer cancel()
	if _, err := fs.fetchBlock(ctx, fh, block); err != nil {
		// Best effort: the foreground read retries on demand.
		return
	}
}

// WriteAt writes p at offset off.
func (f *File) WriteAt(ctx context.Context, p []byte, off int64) (int, error) {
	fs := f.fs
	bs := int64(fs.opt.BlockSize)
	if !fs.opt.WriteBehind {
		if _, err := fs.proto.Write(ctx, f.fh, uint64(off), p, nfs3.FileSync); err != nil {
			return 0, err
		}
		fs.statMu.Lock()
		fs.rpcWrites++
		fs.statMu.Unlock()
		fs.pages.DropFile(f.fh)
		f.extend(off + int64(len(p)))
		return len(p), nil
	}
	written := 0
	for written < len(p) {
		pos := off + int64(written)
		block := uint64(pos / bs)
		inner := pos % bs
		n := int(bs - inner)
		if n > len(p)-written {
			n = len(p) - written
		}
		if err := f.writeCached(ctx, block, inner, p[written:written+n]); err != nil {
			return written, err
		}
		written += n
	}
	f.extend(off + int64(written))
	fs.attrs.Update(f.fh, func(a *nfs3.Fattr3) {
		if uint64(f.Size()) > a.Size {
			a.Size = uint64(f.Size())
		}
	})
	return written, nil
}

func (f *File) extend(end int64) {
	f.mu.Lock()
	if end > f.size {
		f.size = end
	}
	f.mu.Unlock()
}

// writeCached merges data into the block cache as a dirty block,
// fetching the block first when the write is partial and the file
// already has data there.
func (f *File) writeCached(ctx context.Context, block uint64, inner int64, data []byte) error {
	fs := f.fs
	bs := int64(fs.opt.BlockSize)
	var blockData []byte
	if cached, ok := fs.pages.Get(f.fh, block); ok {
		blockData = append([]byte(nil), cached...)
	} else if inner == 0 && int64(len(data)) == bs {
		blockData = nil // full overwrite, no fetch needed
	} else {
		// Partial write: read-modify-write unless beyond current EOF.
		blockStart := int64(block) * bs
		if blockStart < f.Size() {
			got, _, err := fs.proto.Read(ctx, f.fh, uint64(blockStart), uint32(bs))
			if err != nil {
				return err
			}
			fs.statMu.Lock()
			fs.rpcReads++
			fs.statMu.Unlock()
			blockData = append([]byte(nil), got...)
		}
	}
	need := inner + int64(len(data))
	if int64(len(blockData)) < need {
		grown := make([]byte, need)
		copy(grown, blockData)
		blockData = grown
	}
	copy(blockData[inner:], data)
	evicted := fs.pages.Put(f.fh, block, blockData, true)
	for _, b := range evicted {
		fs.writeBackBlock(ctx, b)
	}
	return nil
}

// Read reads sequentially from the file's current offset.
func (f *File) Read(ctx context.Context, p []byte) (int, error) {
	f.mu.Lock()
	off := f.offset
	f.mu.Unlock()
	n, err := f.ReadAt(ctx, p, off)
	f.mu.Lock()
	f.offset += int64(n)
	f.mu.Unlock()
	return n, err
}

// Write writes sequentially at the file's current offset.
func (f *File) Write(ctx context.Context, p []byte) (int, error) {
	f.mu.Lock()
	off := f.offset
	f.mu.Unlock()
	n, err := f.WriteAt(ctx, p, off)
	f.mu.Lock()
	f.offset += int64(n)
	f.mu.Unlock()
	return n, err
}

// Seek sets the file offset.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch whence {
	case io.SeekStart:
		f.offset = offset
	case io.SeekCurrent:
		f.offset += offset
	case io.SeekEnd:
		f.offset = f.size + offset
	default:
		return 0, vfs.ErrInval
	}
	return f.offset, nil
}

// flushFile writes back all dirty blocks of fh and commits them. Any
// sticky write-back error from earlier cache-pressure eviction is
// folded into the result, so no lost write stays silent.
func (fs *FileSystem) flushFile(ctx context.Context, fh nfs3.FH3) error {
	sticky := fs.takeFlushErr(fh)
	dirty := fs.pages.DirtyBlocks(fh)
	if len(dirty) == 0 {
		return sticky
	}
	// Flush with bounded concurrency; the RPC client pipelines them.
	sem := make(chan struct{}, 8)
	errCh := make(chan error, len(dirty))
	bs := uint64(fs.opt.BlockSize)
	for _, b := range dirty {
		sem <- struct{}{}
		go func(b dirtyBlock) {
			defer func() { <-sem }()
			_, err := fs.proto.Write(ctx, fh, b.key.block*bs, b.data, nfs3.Unstable)
			if err == nil {
				fs.statMu.Lock()
				fs.rpcWrites++
				fs.statMu.Unlock()
			}
			errCh <- err
		}(b)
	}
	var firstErr error
	for range dirty {
		if err := <-errCh; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return errors.Join(sticky, firstErr)
	}
	return errors.Join(sticky, fs.proto.Commit(ctx, fh, 0, 0))
}

// Sync flushes the file's dirty blocks and commits them.
func (f *File) Sync(ctx context.Context) error { return f.fs.flushFile(ctx, f.fh) }

// Close flushes dirty data (write-behind) and releases the file.
func (f *File) Close(ctx context.Context) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	if err := f.fs.flushFile(ctx, f.fh); err != nil {
		return err
	}
	// Record the post-close version so a subsequent open by this
	// client keeps its pages (close-to-open).
	if attr, err := f.fs.proto.GetAttr(ctx, f.fh); err == nil {
		f.fs.attrs.Put(f.fh, attr)
		f.fs.verMu.Lock()
		f.fs.versions[fhKey(f.fh)] = fileVersion{mtime: attr.Mtime, size: attr.Size}
		f.fs.verMu.Unlock()
	}
	return nil
}
