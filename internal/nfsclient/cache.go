package nfsclient

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/nfs3"
)

// fhKey converts a file handle to a map key.
func fhKey(fh nfs3.FH3) string { return string(fh.Data) }

// attrCache caches file attributes with a freshness timeout, the way
// kernel NFS clients cache attributes between revalidations.
type attrCache struct {
	mu      sync.Mutex
	timeout time.Duration
	entries map[string]attrEntry
}

type attrEntry struct {
	attr   nfs3.Fattr3
	expiry time.Time
}

func newAttrCache(timeout time.Duration) *attrCache {
	return &attrCache{timeout: timeout, entries: make(map[string]attrEntry)}
}

// Get returns a cached attribute if still fresh.
func (c *attrCache) Get(fh nfs3.FH3) (nfs3.Fattr3, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fhKey(fh)]
	if !ok || time.Now().After(e.expiry) {
		return nfs3.Fattr3{}, false
	}
	return e.attr, true
}

// Put caches an attribute.
func (c *attrCache) Put(fh nfs3.FH3, attr nfs3.Fattr3) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[fhKey(fh)] = attrEntry{attr: attr, expiry: time.Now().Add(c.timeout)}
}

// Update mutates a cached attribute in place (e.g. size growth under
// write-behind) without refreshing its expiry.
func (c *attrCache) Update(fh nfs3.FH3, f func(*nfs3.Fattr3)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[fhKey(fh)]; ok {
		f(&e.attr)
		c.entries[fhKey(fh)] = e
	}
}

// Invalidate drops one entry.
func (c *attrCache) Invalidate(fh nfs3.FH3) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, fhKey(fh))
}

// nameCache is the directory-name lookup cache (DNLC).
type nameCache struct {
	mu      sync.Mutex
	timeout time.Duration
	entries map[nameKey]nameEntry
}

type nameKey struct {
	dir  string
	name string
}

type nameEntry struct {
	fh     nfs3.FH3
	expiry time.Time
}

func newNameCache(timeout time.Duration) *nameCache {
	return &nameCache{timeout: timeout, entries: make(map[nameKey]nameEntry)}
}

// Get returns a cached handle for (dir, name) if fresh.
func (c *nameCache) Get(dir nfs3.FH3, name string) (nfs3.FH3, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[nameKey{fhKey(dir), name}]
	if !ok || time.Now().After(e.expiry) {
		return nfs3.FH3{}, false
	}
	return e.fh, true
}

// Put caches a resolution.
func (c *nameCache) Put(dir nfs3.FH3, name string, fh nfs3.FH3) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[nameKey{fhKey(dir), name}] = nameEntry{fh: fh, expiry: time.Now().Add(c.timeout)}
}

// Invalidate drops one resolution.
func (c *nameCache) Invalidate(dir nfs3.FH3, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, nameKey{fhKey(dir), name})
}

// blockKey identifies one page-cache block.
type blockKey struct {
	fh    string
	block uint64
}

// cacheBlock is one cached file block.
type cacheBlock struct {
	key   blockKey
	data  []byte
	dirty bool
	elem  *list.Element
}

// pageCache is a bounded LRU of file blocks, modelling the client VM's
// limited buffer cache (the paper's client has 256 MB against a 512 MB
// IOzone file, so sequential reads always miss).
type pageCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	lru      *list.List // front = most recent
	blocks   map[blockKey]*cacheBlock

	hits, misses uint64
}

func newPageCache(capacity int64) *pageCache {
	return &pageCache{capacity: capacity, lru: list.New(), blocks: make(map[blockKey]*cacheBlock)}
}

// Get returns the block's data if cached.
func (c *pageCache) Get(fh nfs3.FH3, block uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.blocks[blockKey{fhKey(fh), block}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(b.elem)
	return b.data, true
}

// evictLocked drops clean LRU blocks until used fits capacity,
// returning any dirty blocks that must be flushed by the caller (they
// are removed from the cache).
func (c *pageCache) evictLocked() []*cacheBlock {
	var dirty []*cacheBlock
	for c.used > c.capacity {
		// Find the least-recent block (clean preferred).
		back := c.lru.Back()
		if back == nil {
			break
		}
		var victim *cacheBlock
		for e := back; e != nil; e = e.Prev() {
			b := e.Value.(*cacheBlock)
			if !b.dirty {
				victim = b
				break
			}
		}
		if victim == nil {
			victim = back.Value.(*cacheBlock)
			dirty = append(dirty, victim)
		}
		c.lru.Remove(victim.elem)
		delete(c.blocks, victim.key)
		c.used -= int64(len(victim.data))
	}
	return dirty
}

// Put inserts or replaces a block. It returns dirty blocks evicted to
// make room, which the caller must write back.
func (c *pageCache) Put(fh nfs3.FH3, block uint64, data []byte, dirty bool) []*cacheBlock {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := blockKey{fhKey(fh), block}
	if b, ok := c.blocks[k]; ok {
		c.used += int64(len(data)) - int64(len(b.data))
		b.data = data
		b.dirty = b.dirty || dirty
		c.lru.MoveToFront(b.elem)
	} else {
		b := &cacheBlock{key: k, data: data, dirty: dirty}
		b.elem = c.lru.PushFront(b)
		c.blocks[k] = b
		c.used += int64(len(data))
	}
	return c.evictLocked()
}

// dirtyBlock is one dirty block snapshotted under the cache lock. The
// key and the data header are immutable copies: writers replace a
// block's data slice wholesale (writeCached copies before Put, Put
// swaps the header under mu), so the snapshot can be read lock-free
// after DirtyBlocks returns, while the live *cacheBlock keeps moving.
type dirtyBlock struct {
	key  blockKey
	data []byte
}

// DirtyBlocks returns (and cleans) snapshots of all dirty blocks for
// fh, ordered by block number by the caller if needed.
func (c *pageCache) DirtyBlocks(fh nfs3.FH3) []dirtyBlock {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := fhKey(fh)
	var out []dirtyBlock
	for k, b := range c.blocks {
		if k.fh == key && b.dirty {
			b.dirty = false
			out = append(out, dirtyBlock{key: k, data: b.data})
		}
	}
	return out
}

// DropFile removes all blocks of fh, discarding dirty data (used when
// the file is removed before its data is written back).
func (c *pageCache) DropFile(fh nfs3.FH3) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := fhKey(fh)
	for k, b := range c.blocks {
		if k.fh == key {
			c.lru.Remove(b.elem)
			delete(c.blocks, k)
			c.used -= int64(len(b.data))
		}
	}
}

// HasDirty reports whether fh has unwritten blocks.
func (c *pageCache) HasDirty(fh nfs3.FH3) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := fhKey(fh)
	for k, b := range c.blocks {
		if k.fh == key && b.dirty {
			return true
		}
	}
	return false
}

// Stats reports hit/miss counters and current occupancy.
func (c *pageCache) Stats() (hits, misses uint64, used int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.used
}
