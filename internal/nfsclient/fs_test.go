package nfsclient

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mountd"
	"repro/internal/nfs3"
	"repro/internal/oncrpc"
	"repro/internal/vfs"
)

// startServer launches an NFS+MOUNT server over a MemFS and returns a
// dialer plus the backing FS for white-box assertions.
func startServer(t *testing.T) (Dialer, *vfs.MemFS) {
	t.Helper()
	backend := vfs.NewMemFS()
	rpc := oncrpc.NewServer()
	nfs3.NewServer(backend, 7).Register(rpc)
	md := mountd.NewServer()
	md.AddExport(&mountd.Export{Path: "/GFS/test", FS: backend})
	md.Register(rpc)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rpc.Serve(l)
	t.Cleanup(rpc.Close)
	addr := l.Addr().String()
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }, backend
}

func mountFS(t *testing.T, dial Dialer, opt Options) *FileSystem {
	t.Helper()
	fs, err := Mount(context.Background(), dial, "/GFS/test", opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

func TestMountUnknownExport(t *testing.T) {
	dial, _ := startServer(t)
	if _, err := Mount(context.Background(), dial, "/GFS/nope", Options{}); err == nil {
		t.Fatal("mount of unknown export succeeded")
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{})
	ctx := context.Background()
	f, err := fs.Create(ctx, "hello.txt", 0644)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("grid-wide data access")
	if _, err := f.Write(ctx, msg); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(ctx); err != nil {
		t.Fatal(err)
	}

	g, err := fs.Open(ctx, "hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	n, err := g.Read(ctx, got)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:n], msg) {
		t.Fatalf("read %q", got[:n])
	}
	g.Close(ctx)
}

func TestLargeFileMultiBlock(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{BlockSize: 4096, CacheBytes: 64 * 1024})
	ctx := context.Background()
	payload := make([]byte, 300*1024) // 75 blocks, cache holds 16
	rand.New(rand.NewSource(1)).Read(payload)
	f, _ := fs.Create(ctx, "big", 0644)
	if _, err := f.WriteAt(ctx, payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(ctx); err != nil {
		t.Fatal(err)
	}
	g, _ := fs.Open(ctx, "big")
	got := make([]byte, len(payload))
	if _, err := g.ReadAt(ctx, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large file corrupted through cache eviction path")
	}
}

func TestWriteBehindDelaysRPC(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{})
	ctx := context.Background()
	f, _ := fs.Create(ctx, "delayed", 0644)
	f.Write(ctx, bytes.Repeat([]byte("w"), 8192))
	_, writesBefore := fs.RPCCounts()
	if writesBefore != 0 {
		t.Fatalf("write-behind issued %d write RPCs before close", writesBefore)
	}
	f.Close(ctx)
	_, writesAfter := fs.RPCCounts()
	if writesAfter == 0 {
		t.Fatal("close did not flush dirty data")
	}
}

func TestWriteThroughMode(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{NoWriteBehind: true})
	ctx := context.Background()
	f, _ := fs.Create(ctx, "sync", 0644)
	f.Write(ctx, []byte("immediate"))
	_, writes := fs.RPCCounts()
	if writes != 1 {
		t.Fatalf("write-through issued %d RPCs, want 1", writes)
	}
	f.Close(ctx)
}

func TestPageCacheServesRereads(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{})
	ctx := context.Background()
	f, _ := fs.Create(ctx, "cached", 0644)
	f.Write(ctx, bytes.Repeat([]byte("c"), 32*1024))
	f.Close(ctx)

	g, _ := fs.Open(ctx, "cached")
	buf := make([]byte, 32*1024)
	g.ReadAt(ctx, buf, 0)
	reads1, _ := fs.RPCCounts()
	g.ReadAt(ctx, buf, 0)
	g.ReadAt(ctx, buf, 0)
	reads2, _ := fs.RPCCounts()
	if reads2 != reads1 {
		t.Fatalf("rereads went to the server: %d -> %d", reads1, reads2)
	}
}

func TestSequentialReadDefeatsSmallCache(t *testing.T) {
	// The IOzone property: when the file exceeds the page cache, a
	// second sequential pass gets no hits (LRU evicted everything).
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{BlockSize: 4096, CacheBytes: 8 * 4096, Readahead: -1})
	ctx := context.Background()
	data := make([]byte, 32*4096)
	f, _ := fs.Create(ctx, "seq", 0644)
	f.WriteAt(ctx, data, 0)
	f.Close(ctx)

	g, _ := fs.Open(ctx, "seq")
	buf := make([]byte, 4096)
	for pass := 0; pass < 2; pass++ {
		for off := int64(0); off < int64(len(data)); off += 4096 {
			g.ReadAt(ctx, buf, off)
		}
	}
	reads, _ := fs.RPCCounts()
	if reads < 60 {
		t.Fatalf("only %d read RPCs; cache served a pass it shouldn't", reads)
	}
}

func TestCloseToOpenRevalidation(t *testing.T) {
	dial, backend := startServer(t)
	fs := mountFS(t, dial, Options{AttrTimeout: time.Hour})
	ctx := context.Background()
	f, _ := fs.Create(ctx, "shared", 0644)
	f.Write(ctx, []byte("version-one"))
	f.Close(ctx)

	g, _ := fs.Open(ctx, "shared")
	buf := make([]byte, 32)
	n, _ := g.Read(ctx, buf)
	if string(buf[:n]) != "version-one" {
		t.Fatalf("got %q", buf[:n])
	}
	g.Close(ctx)

	// Another client (simulated by writing to the backend directly)
	// replaces the content.
	time.Sleep(10 * time.Millisecond) // ensure distinct mtime
	h, _, err := backend.Lookup(backend.Root(), "shared")
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Write(h, 0, []byte("version-TWO")); err != nil {
		t.Fatal(err)
	}

	// Reopen must revalidate and see the new content despite the huge
	// attribute timeout, because open bypasses the attr cache.
	g2, err := fs.Open(ctx, "shared")
	if err != nil {
		t.Fatal(err)
	}
	n, _ = g2.Read(ctx, buf)
	if string(buf[:n]) != "version-TWO" {
		t.Fatalf("close-to-open failed: got %q", buf[:n])
	}
}

func TestRemoveDiscardsDirtyData(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{})
	ctx := context.Background()
	f, _ := fs.Create(ctx, "temp", 0644)
	f.Write(ctx, bytes.Repeat([]byte("t"), 64*1024))
	// Remove before close: dirty blocks must be cancelled, not flushed.
	if err := fs.Remove(ctx, "temp"); err != nil {
		t.Fatal(err)
	}
	_, writes := fs.RPCCounts()
	if writes != 0 {
		t.Fatalf("removed file's dirty data was flushed (%d writes)", writes)
	}
	if _, err := fs.Stat(ctx, "temp"); !errors.Is(err, vfs.ErrNoEnt) {
		t.Fatalf("stat after remove: %v", err)
	}
}

func TestDirectoryOperations(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{})
	ctx := context.Background()
	if err := fs.MkdirAll(ctx, "a/b/c", 0755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f, err := fs.Create(ctx, fmt.Sprintf("a/b/c/f%d", i), 0644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(ctx, []byte("x"))
		f.Close(ctx)
	}
	entries, err := fs.ReadDir(ctx, "a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("readdir got %d entries", len(entries))
	}
	// Rmdir of non-empty fails; after cleanup it succeeds.
	if err := fs.Rmdir(ctx, "a/b/c"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	for i := 0; i < 10; i++ {
		fs.Remove(ctx, fmt.Sprintf("a/b/c/f%d", i))
	}
	if err := fs.Rmdir(ctx, "a/b/c"); err != nil {
		t.Fatal(err)
	}
}

func TestRenameVisibility(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{})
	ctx := context.Background()
	f, _ := fs.Create(ctx, "src", 0644)
	f.Write(ctx, []byte("contents"))
	f.Close(ctx)
	if err := fs.Rename(ctx, "src", "dst"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(ctx, "src"); !errors.Is(err, vfs.ErrNoEnt) {
		t.Fatalf("src still visible: %v", err)
	}
	g, err := fs.Open(ctx, "dst")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := g.Read(ctx, buf)
	if string(buf[:n]) != "contents" {
		t.Fatalf("got %q", buf[:n])
	}
}

func TestSymlinkAndReadLink(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{})
	ctx := context.Background()
	if err := fs.Symlink(ctx, "some/target", "ln"); err != nil {
		t.Fatal(err)
	}
	target, err := fs.ReadLink(ctx, "ln")
	if err != nil || target != "some/target" {
		t.Fatalf("readlink %q %v", target, err)
	}
}

func TestTruncateInvalidatesCache(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{})
	ctx := context.Background()
	f, _ := fs.Create(ctx, "t", 0644)
	f.Write(ctx, bytes.Repeat([]byte("z"), 1000))
	f.Close(ctx)
	if err := fs.Truncate(ctx, "t", 10); err != nil {
		t.Fatal(err)
	}
	a, err := fs.Stat(ctx, "t")
	if err != nil || a.Size != 10 {
		t.Fatalf("size %d err %v", a.Size, err)
	}
}

func TestAttrCacheSuppressesGetattr(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{AttrTimeout: time.Hour})
	ctx := context.Background()
	f, _ := fs.Create(ctx, "x", 0644)
	f.Close(ctx)
	if _, err := fs.Stat(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	// Many stats: all served from cache (no way to observe RPC count
	// directly for GETATTR, so observe latency-free behaviour via the
	// name cache instead: re-stat returns identical attrs).
	a1, _ := fs.Stat(ctx, "x")
	a2, _ := fs.Stat(ctx, "x")
	if a1 != a2 {
		t.Fatal("cached attrs differ")
	}
}

func TestSeek(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{})
	ctx := context.Background()
	f, _ := fs.Create(ctx, "s", 0644)
	f.Write(ctx, []byte("0123456789"))
	if _, err := f.Seek(4, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	n, _ := f.Read(ctx, buf)
	if string(buf[:n]) != "456" {
		t.Fatalf("got %q", buf[:n])
	}
	if pos, _ := f.Seek(-2, io.SeekCurrent); pos != 5 {
		t.Fatalf("pos %d", pos)
	}
	if pos, _ := f.Seek(-1, io.SeekEnd); pos != 9 {
		t.Fatalf("pos %d", pos)
	}
}

func TestAccessCall(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{UID: 42, GID: 42})
	ctx := context.Background()
	f, _ := fs.Create(ctx, "mine", 0600)
	f.Close(ctx)
	granted, err := fs.Access(ctx, "mine", vfs.AccessRead|vfs.AccessModify)
	if err != nil {
		t.Fatal(err)
	}
	if granted != vfs.AccessRead|vfs.AccessModify {
		t.Fatalf("owner granted %x", granted)
	}
}

func TestPermissionEnforcement(t *testing.T) {
	dial, _ := startServer(t)
	owner := mountFS(t, dial, Options{UID: 100, GID: 100})
	ctx := context.Background()
	f, err := owner.Create(ctx, "private", 0600)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(ctx, []byte("secret"))
	f.Close(ctx)

	other := mountFS(t, dial, Options{UID: 200, GID: 200})
	g, err := other.Open(ctx, "private")
	if err != nil {
		t.Fatal(err) // open itself only does lookup
	}
	buf := make([]byte, 8)
	if _, err := g.ReadAt(ctx, buf, 0); !errors.Is(err, vfs.ErrAccess) {
		t.Fatalf("foreign read gave %v, want ErrAccess", err)
	}
}

func TestOpenExclusive(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{})
	ctx := context.Background()
	if _, err := fs.OpenFile(ctx, "x", OWrite|OCreate|OExcl, 0644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.OpenFile(ctx, "x", OWrite|OCreate|OExcl, 0644); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("second exclusive open: %v", err)
	}
}

func TestConcurrentFileWriters(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{})
	ctx := context.Background()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			name := fmt.Sprintf("w%d", i)
			f, err := fs.Create(ctx, name, 0644)
			if err != nil {
				done <- err
				return
			}
			data := bytes.Repeat([]byte{byte('a' + i)}, 10000)
			if _, err := f.WriteAt(ctx, data, 0); err != nil {
				done <- err
				return
			}
			done <- f.Close(ctx)
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		a, err := fs.Stat(ctx, fmt.Sprintf("w%d", i))
		if err != nil || a.Size != 10000 {
			t.Fatalf("w%d: size %d err %v", i, a.Size, err)
		}
	}
}

// Property: random interleavings of WriteAt land the same bytes on the
// server as in a local model.
func TestQuickWriteModelThroughStack(t *testing.T) {
	dial, _ := startServer(t)
	fs := mountFS(t, dial, Options{BlockSize: 512, CacheBytes: 16 * 512})
	ctx := context.Background()
	counter := 0
	f := func(seed int64) bool {
		counter++
		name := fmt.Sprintf("model%d", counter)
		rng := rand.New(rand.NewSource(seed))
		file, err := fs.Create(ctx, name, 0644)
		if err != nil {
			return false
		}
		var model []byte
		for i := 0; i < 12; i++ {
			off := rng.Intn(3000)
			n := rng.Intn(700) + 1
			data := make([]byte, n)
			rng.Read(data)
			if _, err := file.WriteAt(ctx, data, int64(off)); err != nil {
				return false
			}
			if off+n > len(model) {
				grown := make([]byte, off+n)
				copy(grown, model)
				model = grown
			}
			copy(model[off:], data)
		}
		if err := file.Close(ctx); err != nil {
			return false
		}
		got := make([]byte, len(model))
		g, err := fs.Open(ctx, name)
		if err != nil {
			return false
		}
		if _, err := g.ReadAt(ctx, got, 0); err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
