// Batched metadata operations: the serial walk/stat loops of fs.go
// re-expressed over the oncrpc future API, so a metadata storm pays
// per-RTT cost once per pipeline round instead of once per file. The
// three entry points mirror the kernel-client patterns the paper's
// workloads hit hardest: BatchStat ("ls -l" / untar stat storms),
// ReadDirStat (readdir+stat with attribute fill), and Revalidate
// (parallel GETATTR freshness sweeps over cached state).
package nfsclient

import (
	"context"

	"repro/internal/nfs3"
	"repro/internal/oncrpc"
)

// StatResult is one path's outcome from BatchStat.
type StatResult struct {
	Path string
	Attr nfs3.Fattr3
	Err  error
}

// walkEntry is one path's resolution state inside walkMany.
type walkEntry struct {
	parts []string
	depth int // components resolved so far
	cur   nfs3.FH3
	err   error
}

// pendingLookup is one deduplicated (dir, name) LOOKUP in flight,
// with the walk entries waiting on it.
type pendingLookup struct {
	dir  nfs3.FH3
	name string
	res  nfs3.LookupRes
	p    *oncrpc.Pending
	idxs []int
}

// walkMany resolves many paths level-synchronously: each round
// advances every path through the name cache as far as it goes, then
// issues the round's cache misses as concurrent LOOKUP futures — one
// per distinct (directory, name) pair, shared by every path waiting
// on it. Components within one path still resolve in order (a child
// LOOKUP needs its parent's handle — that dependency is why only
// cross-path pipelining is safe), so a storm of depth-d paths costs
// ~d pipeline rounds instead of sum-of-components round trips.
func (fs *FileSystem) walkMany(ctx context.Context, paths []string) []walkEntry {
	ws := make([]walkEntry, len(paths))
	for i, p := range paths {
		ws[i] = walkEntry{parts: splitPath(p), cur: fs.root}
	}
	for {
		uniq := make(map[string]int)
		var pls []pendingLookup
		for i := range ws {
			w := &ws[i]
			if w.err != nil {
				continue
			}
			for w.depth < len(w.parts) {
				fh, ok := fs.names.Get(w.cur, w.parts[w.depth])
				if !ok {
					break
				}
				w.cur = fh
				w.depth++
			}
			if w.depth == len(w.parts) {
				continue
			}
			name := w.parts[w.depth]
			k := fhKey(w.cur) + "\x00" + name
			j, ok := uniq[k]
			if !ok {
				j = len(pls)
				uniq[k] = j
				pls = append(pls, pendingLookup{dir: w.cur, name: name})
			}
			pls[j].idxs = append(pls[j].idxs, i)
		}
		if len(pls) == 0 {
			return ws
		}
		// Submit the whole round, then collect: the window applies
		// backpressure during submission while earlier futures
		// complete on the read loop.
		for j := range pls {
			pls[j].p = fs.proto.GoLookup(ctx, pls[j].dir, pls[j].name, &pls[j].res)
		}
		for j := range pls {
			pl := &pls[j]
			err := pl.p.Wait(ctx)
			if err == nil && pl.res.Status != nfs3.OK {
				err = pl.res.Status.Error()
			}
			if err != nil {
				for _, i := range pl.idxs {
					ws[i].err = err
				}
				continue
			}
			fs.names.Put(pl.dir, pl.name, pl.res.Obj)
			if pl.res.Attr.Present {
				fs.attrs.Put(pl.res.Obj, pl.res.Attr.Attr)
			}
			for _, i := range pl.idxs {
				ws[i].cur = pl.res.Obj
				ws[i].depth++
			}
		}
	}
}

// pendingAttr is one deduplicated GETATTR in flight with the result
// slots waiting on it.
type pendingAttr struct {
	fh   nfs3.FH3
	res  nfs3.GetAttrRes
	p    *oncrpc.Pending
	idxs []int
}

// gatherAttrs fetches attributes for the handles at fhs[idxs...]
// concurrently (deduplicated by handle) and hands each result to
// apply, which runs on the collecting goroutine. Fetched attributes
// are entered into the attribute cache.
func (fs *FileSystem) gatherAttrs(ctx context.Context, fhs []nfs3.FH3, apply func(i int, attr nfs3.Fattr3, err error)) {
	uniq := make(map[string]int)
	var pas []pendingAttr
	for i, fh := range fhs {
		k := fhKey(fh)
		j, ok := uniq[k]
		if !ok {
			j = len(pas)
			uniq[k] = j
			pas = append(pas, pendingAttr{fh: fh})
		}
		pas[j].idxs = append(pas[j].idxs, i)
	}
	for j := range pas {
		pas[j].p = fs.proto.GoGetAttr(ctx, pas[j].fh, &pas[j].res)
	}
	for j := range pas {
		pa := &pas[j]
		err := pa.p.Wait(ctx)
		if err == nil && pa.res.Status != nfs3.OK {
			err = pa.res.Status.Error()
		}
		if err == nil {
			fs.attrs.Put(pa.fh, pa.res.Attr)
		}
		for _, i := range pa.idxs {
			apply(i, pa.res.Attr, err)
		}
	}
}

// BatchStat stats every path concurrently: a level-synchronous
// pipelined walk resolves the handles, then one GETATTR per distinct
// uncached handle flows through the pipeline window. Results are
// positional; each carries its own error (a missing file fails only
// its slot). Serial Stat costs 2 round trips per file on a cold
// cache; BatchStat costs ~(depth+1) pipeline rounds for the whole
// set.
func (fs *FileSystem) BatchStat(ctx context.Context, paths []string) []StatResult {
	out := make([]StatResult, len(paths))
	ws := fs.walkMany(ctx, paths)
	var fhs []nfs3.FH3
	var slots []int
	for i := range ws {
		out[i].Path = paths[i]
		if ws[i].err != nil {
			out[i].Err = ws[i].err
			continue
		}
		if a, ok := fs.attrs.Get(ws[i].cur); ok {
			out[i].Attr = a
			continue
		}
		fhs = append(fhs, ws[i].cur)
		slots = append(slots, i)
	}
	fs.gatherAttrs(ctx, fhs, func(i int, attr nfs3.Fattr3, err error) {
		if err != nil {
			out[slots[i]].Err = err
			return
		}
		out[slots[i]].Attr = attr
	})
	return out
}

// ReadDirStat lists path like ReadDir but guarantees attributes on
// every entry that has a file handle: entries the server returned
// without post-op attributes are filled from the attribute cache or
// by concurrent GETATTRs through the pipeline window — the
// readdir+stat storm as one listing plus one pipeline round instead
// of one round trip per entry.
func (fs *FileSystem) ReadDirStat(ctx context.Context, path string) ([]nfs3.DirEntryPlus, error) {
	entries, err := fs.ReadDir(ctx, path)
	if err != nil {
		return nil, err
	}
	var fhs []nfs3.FH3
	var slots []int
	for i := range entries {
		e := &entries[i]
		if e.Attr.Present || !e.FH.Present {
			continue
		}
		if a, ok := fs.attrs.Get(e.FH.FH); ok {
			e.Attr = nfs3.PostOpAttr{Present: true, Attr: a}
			continue
		}
		fhs = append(fhs, e.FH.FH)
		slots = append(slots, i)
	}
	var firstErr error
	fs.gatherAttrs(ctx, fhs, func(i int, attr nfs3.Fattr3, err error) {
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		entries[slots[i]].Attr = nfs3.PostOpAttr{Present: true, Attr: attr}
	})
	return entries, firstErr
}

// Revalidate refreshes the attributes of every given path with
// concurrent GETATTRs, bypassing the attribute cache (this is the
// freshness sweep, so cached entries are what is being checked). A
// file whose (mtime, size) moved since its pages were populated has
// those pages dropped, exactly like close-to-open revalidation at
// Open. It returns how many files had changed and the first error
// encountered (remaining paths are still processed).
func (fs *FileSystem) Revalidate(ctx context.Context, paths []string) (changed int, err error) {
	ws := fs.walkMany(ctx, paths)
	var fhs []nfs3.FH3
	for i := range ws {
		if ws[i].err != nil {
			if err == nil {
				err = ws[i].err
			}
			continue
		}
		fhs = append(fhs, ws[i].cur)
	}
	fs.gatherAttrs(ctx, fhs, func(i int, attr nfs3.Fattr3, aerr error) {
		if aerr != nil {
			if err == nil {
				err = aerr
			}
			return
		}
		fh := fhs[i]
		key := fhKey(fh)
		cur := fileVersion{mtime: attr.Mtime, size: attr.Size}
		fs.verMu.Lock()
		prev, seen := fs.versions[key]
		stale := seen && prev != cur
		if seen {
			fs.versions[key] = cur
		}
		fs.verMu.Unlock()
		if stale {
			fs.pages.DropFile(fh)
			changed++
		}
	})
	return changed, err
}
