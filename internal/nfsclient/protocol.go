// Package nfsclient implements an NFSv3 client comparable to a kernel
// client: MOUNT-protocol attachment, the full NFSv3 call set, a
// timeout-based attribute cache, a bounded LRU memory page cache with
// close-to-open revalidation, write-behind with COMMIT, and optional
// sequential readahead.
//
// The benchmarks use it as the stand-in for the paper's unmodified
// kernel NFS client: pointed at the NFS server directly it is the
// nfs-v3 baseline; pointed at an SGFS client-side proxy it becomes the
// application-facing edge of a secure grid session.
package nfsclient

import (
	"context"
	"fmt"
	"net"

	"repro/internal/mountd"
	"repro/internal/nfs3"
	"repro/internal/oncrpc"
	"repro/internal/vfs"
)

// Dialer opens a transport to the NFS server (or proxy).
type Dialer func() (net.Conn, error)

// Proto is a typed NFSv3 protocol client over one RPC connection. All
// methods are safe for concurrent use and block until the reply
// arrives (the paper's prototype uses blocking RPC; concurrency across
// goroutines still pipelines on the wire).
type Proto struct {
	rpc *oncrpc.Client
}

// NewProto wraps an established connection.
func NewProto(conn net.Conn) *Proto {
	return &Proto{rpc: oncrpc.NewClient(conn, nfs3.Program, nfs3.Version)}
}

// SetCred installs the AUTH_SYS credential used on subsequent calls.
func (p *Proto) SetCred(uid, gid uint32, machine string) error {
	auth, err := (&oncrpc.AuthSys{MachineName: machine, UID: uid, GID: gid}).Auth()
	if err != nil {
		return err
	}
	p.rpc.SetCred(auth)
	return nil
}

// Close tears down the connection.
func (p *Proto) Close() error { return p.rpc.Close() }

// Null issues the NULL procedure (liveness probe).
func (p *Proto) Null(ctx context.Context) error {
	return p.rpc.Call(ctx, nfs3.ProcNull, nil, nil)
}

// GetAttr fetches attributes.
func (p *Proto) GetAttr(ctx context.Context, fh nfs3.FH3) (nfs3.Fattr3, error) {
	var res nfs3.GetAttrRes
	if err := p.rpc.Call(ctx, nfs3.ProcGetAttr, &nfs3.GetAttrArgs{Obj: fh}, &res); err != nil {
		return nfs3.Fattr3{}, err
	}
	return res.Attr, res.Status.Error()
}

// GoGetAttr issues GETATTR asynchronously through the connection's
// pipeline window. res is owned by the client until the returned
// future's Done channel closes; on a nil future error the caller
// still checks res.Status as with GetAttr.
func (p *Proto) GoGetAttr(ctx context.Context, fh nfs3.FH3, res *nfs3.GetAttrRes) *oncrpc.Pending {
	return p.rpc.Go(ctx, nfs3.ProcGetAttr, &nfs3.GetAttrArgs{Obj: fh}, res)
}

// GoLookup issues LOOKUP asynchronously. See GoGetAttr for the result
// ownership rules.
func (p *Proto) GoLookup(ctx context.Context, dir nfs3.FH3, name string, res *nfs3.LookupRes) *oncrpc.Pending {
	return p.rpc.Go(ctx, nfs3.ProcLookup, &nfs3.LookupArgs{What: nfs3.DirOpArgs{Dir: dir, Name: name}}, res)
}

// SetAttr applies attribute changes.
func (p *Proto) SetAttr(ctx context.Context, fh nfs3.FH3, attr nfs3.Sattr3) error {
	var res nfs3.WccRes
	if err := p.rpc.Call(ctx, nfs3.ProcSetAttr, &nfs3.SetAttrArgs{Obj: fh, Attr: attr}, &res); err != nil {
		return err
	}
	return res.Status.Error()
}

// Lookup resolves name in dir.
func (p *Proto) Lookup(ctx context.Context, dir nfs3.FH3, name string) (nfs3.FH3, nfs3.Fattr3, error) {
	var res nfs3.LookupRes
	if err := p.rpc.Call(ctx, nfs3.ProcLookup, &nfs3.LookupArgs{What: nfs3.DirOpArgs{Dir: dir, Name: name}}, &res); err != nil {
		return nfs3.FH3{}, nfs3.Fattr3{}, err
	}
	if res.Status != nfs3.OK {
		return nfs3.FH3{}, nfs3.Fattr3{}, res.Status.Error()
	}
	return res.Obj, res.Attr.Attr, nil
}

// Access asks the server which of mask is granted.
func (p *Proto) Access(ctx context.Context, fh nfs3.FH3, mask uint32) (uint32, error) {
	var res nfs3.AccessRes
	if err := p.rpc.Call(ctx, nfs3.ProcAccess, &nfs3.AccessArgs{Obj: fh, Access: mask}, &res); err != nil {
		return 0, err
	}
	return res.Access, res.Status.Error()
}

// ReadLink reads a symlink target.
func (p *Proto) ReadLink(ctx context.Context, fh nfs3.FH3) (string, error) {
	var res nfs3.ReadLinkRes
	if err := p.rpc.Call(ctx, nfs3.ProcReadLink, &nfs3.ReadLinkArgs{Obj: fh}, &res); err != nil {
		return "", err
	}
	return res.Target, res.Status.Error()
}

// Read reads up to count bytes at offset.
func (p *Proto) Read(ctx context.Context, fh nfs3.FH3, offset uint64, count uint32) ([]byte, bool, error) {
	var res nfs3.ReadRes
	if err := p.rpc.Call(ctx, nfs3.ProcRead, &nfs3.ReadArgs{Obj: fh, Offset: offset, Count: count}, &res); err != nil {
		return nil, false, err
	}
	if res.Status != nfs3.OK {
		return nil, false, res.Status.Error()
	}
	return res.Data, res.EOF, nil
}

// Write writes data at offset with the given stability level,
// returning the committed level.
func (p *Proto) Write(ctx context.Context, fh nfs3.FH3, offset uint64, data []byte, stable uint32) (uint32, error) {
	args := &nfs3.WriteArgs{Obj: fh, Offset: offset, Count: uint32(len(data)), Stable: stable, Data: data}
	var res nfs3.WriteRes
	if err := p.rpc.Call(ctx, nfs3.ProcWrite, args, &res); err != nil {
		return 0, err
	}
	if res.Status != nfs3.OK {
		return 0, res.Status.Error()
	}
	if res.Count != uint32(len(data)) {
		return res.Committed, fmt.Errorf("nfsclient: short write %d of %d", res.Count, len(data))
	}
	return res.Committed, nil
}

// Create makes a regular file.
func (p *Proto) Create(ctx context.Context, dir nfs3.FH3, name string, mode uint32, exclusive bool) (nfs3.FH3, nfs3.Fattr3, error) {
	args := &nfs3.CreateArgs{
		Where: nfs3.DirOpArgs{Dir: dir, Name: name},
		Mode:  nfs3.CreateUnchecked,
		Attr:  nfs3.Sattr3{SetMode: true, Mode: mode},
	}
	if exclusive {
		args.Mode = nfs3.CreateGuarded
	}
	var res nfs3.CreateRes
	if err := p.rpc.Call(ctx, nfs3.ProcCreate, args, &res); err != nil {
		return nfs3.FH3{}, nfs3.Fattr3{}, err
	}
	if res.Status != nfs3.OK {
		return nfs3.FH3{}, nfs3.Fattr3{}, res.Status.Error()
	}
	return res.Obj.FH, res.Attr.Attr, nil
}

// Mkdir makes a directory.
func (p *Proto) Mkdir(ctx context.Context, dir nfs3.FH3, name string, mode uint32) (nfs3.FH3, nfs3.Fattr3, error) {
	args := &nfs3.MkdirArgs{
		Where: nfs3.DirOpArgs{Dir: dir, Name: name},
		Attr:  nfs3.Sattr3{SetMode: true, Mode: mode},
	}
	var res nfs3.CreateRes
	if err := p.rpc.Call(ctx, nfs3.ProcMkdir, args, &res); err != nil {
		return nfs3.FH3{}, nfs3.Fattr3{}, err
	}
	if res.Status != nfs3.OK {
		return nfs3.FH3{}, nfs3.Fattr3{}, res.Status.Error()
	}
	return res.Obj.FH, res.Attr.Attr, nil
}

// Symlink makes a symbolic link.
func (p *Proto) Symlink(ctx context.Context, dir nfs3.FH3, name, target string) (nfs3.FH3, error) {
	args := &nfs3.SymlinkArgs{Where: nfs3.DirOpArgs{Dir: dir, Name: name}, Target: target}
	var res nfs3.CreateRes
	if err := p.rpc.Call(ctx, nfs3.ProcSymlink, args, &res); err != nil {
		return nfs3.FH3{}, err
	}
	if res.Status != nfs3.OK {
		return nfs3.FH3{}, res.Status.Error()
	}
	return res.Obj.FH, nil
}

// Remove unlinks a file.
func (p *Proto) Remove(ctx context.Context, dir nfs3.FH3, name string) error {
	var res nfs3.WccRes
	if err := p.rpc.Call(ctx, nfs3.ProcRemove, &nfs3.RemoveArgs{Obj: nfs3.DirOpArgs{Dir: dir, Name: name}}, &res); err != nil {
		return err
	}
	return res.Status.Error()
}

// Rmdir removes an empty directory.
func (p *Proto) Rmdir(ctx context.Context, dir nfs3.FH3, name string) error {
	var res nfs3.WccRes
	if err := p.rpc.Call(ctx, nfs3.ProcRmdir, &nfs3.RemoveArgs{Obj: nfs3.DirOpArgs{Dir: dir, Name: name}}, &res); err != nil {
		return err
	}
	return res.Status.Error()
}

// Rename moves an object.
func (p *Proto) Rename(ctx context.Context, fromDir nfs3.FH3, fromName string, toDir nfs3.FH3, toName string) error {
	args := &nfs3.RenameArgs{
		From: nfs3.DirOpArgs{Dir: fromDir, Name: fromName},
		To:   nfs3.DirOpArgs{Dir: toDir, Name: toName},
	}
	var res nfs3.RenameRes
	if err := p.rpc.Call(ctx, nfs3.ProcRename, args, &res); err != nil {
		return err
	}
	return res.Status.Error()
}

// Link makes a hard link.
func (p *Proto) Link(ctx context.Context, obj nfs3.FH3, dir nfs3.FH3, name string) error {
	var res nfs3.LinkRes
	if err := p.rpc.Call(ctx, nfs3.ProcLink, &nfs3.LinkArgs{Obj: obj, Link: nfs3.DirOpArgs{Dir: dir, Name: name}}, &res); err != nil {
		return err
	}
	return res.Status.Error()
}

// ReadDirPlus reads a directory page with attributes and handles.
func (p *Proto) ReadDirPlus(ctx context.Context, dir nfs3.FH3, cookie uint64) ([]nfs3.DirEntryPlus, bool, error) {
	args := &nfs3.ReadDirPlusArgs{Dir: dir, Cookie: cookie, DirCount: 8192, MaxCount: 32768}
	var res nfs3.ReadDirPlusRes
	if err := p.rpc.Call(ctx, nfs3.ProcReadDirPlus, args, &res); err != nil {
		return nil, false, err
	}
	if res.Status != nfs3.OK {
		return nil, false, res.Status.Error()
	}
	return res.Entries, res.EOF, nil
}

// FSStat reports file system capacity.
func (p *Proto) FSStat(ctx context.Context, fh nfs3.FH3) (nfs3.FSStatRes, error) {
	var res nfs3.FSStatRes
	if err := p.rpc.Call(ctx, nfs3.ProcFSStat, &nfs3.FSStatArgs{Obj: fh}, &res); err != nil {
		return res, err
	}
	return res, res.Status.Error()
}

// FSInfo reports static file system parameters.
func (p *Proto) FSInfo(ctx context.Context, fh nfs3.FH3) (nfs3.FSInfoRes, error) {
	var res nfs3.FSInfoRes
	if err := p.rpc.Call(ctx, nfs3.ProcFSInfo, &nfs3.FSStatArgs{Obj: fh}, &res); err != nil {
		return res, err
	}
	return res, res.Status.Error()
}

// Commit flushes unstable writes.
func (p *Proto) Commit(ctx context.Context, fh nfs3.FH3, offset uint64, count uint32) error {
	var res nfs3.CommitRes
	if err := p.rpc.Call(ctx, nfs3.ProcCommit, &nfs3.CommitArgs{Obj: fh, Offset: offset, Count: count}, &res); err != nil {
		return err
	}
	return res.Status.Error()
}

// MountExport contacts the MOUNT service over its own short-lived
// connection and returns the root file handle of path.
func MountExport(ctx context.Context, dial Dialer, path string) (nfs3.FH3, error) {
	conn, err := dial()
	if err != nil {
		return nfs3.FH3{}, fmt.Errorf("nfsclient: dial mountd: %w", err)
	}
	mc := oncrpc.NewClient(conn, mountd.Program, mountd.Version)
	defer mc.Close()
	var res mountd.MntRes
	if err := mc.Call(ctx, mountd.ProcMnt, &mountd.MntArgs{Path: path}, &res); err != nil {
		return nfs3.FH3{}, err
	}
	if res.Status != mountd.MntOK {
		return nfs3.FH3{}, fmt.Errorf("nfsclient: mount %q refused: %w", path, vfs.Errno(res.Status))
	}
	return res.FH, nil
}
