// Package acl implements SGFS's fine-grained grid access control
// (§4.3): every file or directory may have an ACL file alongside it,
// named in the style ".filename.acl", listing grid distinguished names
// with permission bit masks. The server-side proxy evaluates these on
// ACCESS requests, caches them in memory for performance, inherits a
// parent's ACL when an object has no dedicated one, and shields ACL
// files themselves from remote access.
//
// ACL file format, one entry per line:
//
//	"/C=US/O=SGFS Grid/OU=users/CN=alice" rwx
//	"/C=US/O=SGFS Grid/OU=users/CN=bob"   r
//	# or a raw NFSv3 ACCESS bit mask:
//	"/C=US/O=SGFS Grid/OU=users/CN=carol" 0x2f
package acl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/vfs"
)

// Permission masks in NFSv3 ACCESS terms.
const (
	PermRead  = vfs.AccessRead | vfs.AccessLookup
	PermWrite = vfs.AccessModify | vfs.AccessExtend | vfs.AccessDelete
	PermExec  = vfs.AccessExecute
	PermAll   = PermRead | PermWrite | PermExec
)

// ACL is the access control list of one object: DN → granted ACCESS
// mask. A DN present with mask 0 is an explicit denial.
type ACL struct {
	entries map[string]uint32
}

// New creates an empty ACL.
func New() *ACL { return &ACL{entries: make(map[string]uint32)} }

// Parse reads ACL lines from r.
func Parse(r io.Reader) (*ACL, error) {
	a := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		dn, mask, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("acl: line %d: %w", lineNo, err)
		}
		a.entries[dn] = mask
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// ParseBytes parses an ACL from a byte slice.
func ParseBytes(b []byte) (*ACL, error) { return Parse(strings.NewReader(string(b))) }

func parseLine(line string) (string, uint32, error) {
	if !strings.HasPrefix(line, `"`) {
		return "", 0, fmt.Errorf("DN must be quoted: %q", line)
	}
	end := strings.Index(line[1:], `"`)
	if end < 0 {
		return "", 0, fmt.Errorf("unterminated DN: %q", line)
	}
	dn := line[1 : 1+end]
	spec := strings.TrimSpace(line[2+end:])
	mask, err := ParsePerm(spec)
	if err != nil {
		return "", 0, err
	}
	return dn, mask, nil
}

// ParsePerm parses a permission spec: "rwx" letters (any subset, or
// "-" for none) or a numeric ACCESS bit mask (decimal, 0x hex, 0
// octal).
func ParsePerm(spec string) (uint32, error) {
	if spec == "" {
		return 0, fmt.Errorf("missing permission spec")
	}
	if isLetterSpec(spec) {
		var mask uint32
		for _, c := range spec {
			switch c {
			case 'r':
				mask |= PermRead
			case 'w':
				mask |= PermWrite
			case 'x':
				mask |= PermExec
			case '-':
			}
		}
		return mask, nil
	}
	v, err := strconv.ParseUint(spec, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad permission spec %q", spec)
	}
	return uint32(v), nil
}

func isLetterSpec(s string) bool {
	for _, c := range s {
		if c != 'r' && c != 'w' && c != 'x' && c != '-' {
			return false
		}
	}
	return true
}

// FormatPerm renders a mask as rwx letters (approximating; exact
// masks that don't decompose are emitted numerically).
func FormatPerm(mask uint32) string {
	var b strings.Builder
	rest := mask
	if mask&PermRead == PermRead {
		b.WriteByte('r')
		rest &^= PermRead
	}
	if mask&PermWrite == PermWrite {
		b.WriteByte('w')
		rest &^= PermWrite
	}
	if mask&PermExec == PermExec {
		b.WriteByte('x')
		rest &^= PermExec
	}
	if rest != 0 || b.Len() == 0 {
		return fmt.Sprintf("%#x", mask)
	}
	return b.String()
}

// Grant sets the mask for a DN.
func (a *ACL) Grant(dn string, mask uint32) { a.entries[dn] = mask }

// Deny records an explicit zero-mask entry for a DN.
func (a *ACL) Deny(dn string) { a.entries[dn] = 0 }

// Remove deletes a DN's entry entirely.
func (a *ACL) Remove(dn string) { delete(a.entries, dn) }

// Check returns the ACCESS mask granted to dn. Per the paper, a user
// absent from the ACL receives zero, "which disables all access
// permissions".
func (a *ACL) Check(dn string) uint32 {
	if a == nil {
		return 0
	}
	return a.entries[dn]
}

// Has reports whether dn appears explicitly.
func (a *ACL) Has(dn string) bool {
	_, ok := a.entries[dn]
	return ok
}

// Len reports the number of entries.
func (a *ACL) Len() int { return len(a.entries) }

// Serialize renders the ACL in file format, sorted for stability.
func (a *ACL) Serialize() []byte {
	dns := make([]string, 0, len(a.entries))
	for dn := range a.entries {
		dns = append(dns, dn)
	}
	sort.Strings(dns)
	var b strings.Builder
	for _, dn := range dns {
		fmt.Fprintf(&b, "%q %s\n", dn, FormatPerm(a.entries[dn]))
	}
	return []byte(b.String())
}

// FileName returns the ACL file name for an object name:
// ".name.acl".
func FileName(name string) string { return "." + name + ".acl" }

// IsACLFile reports whether name is an ACL file. The server-side
// proxy uses this to protect ACL files from remote access.
func IsACLFile(name string) bool {
	return strings.HasPrefix(name, ".") && strings.HasSuffix(name, ".acl") && len(name) > 5
}

// Cache is the server-side proxy's in-memory ACL cache, keyed by the
// directory handle and object name the ACL governs. Entries are
// invalidated when the proxy observes a write to the ACL file or a
// management-service update.
type Cache struct {
	mu      sync.RWMutex
	entries map[cacheKey]*ACL

	hits, misses atomic.Uint64
}

type cacheKey struct {
	dir  string // directory handle bytes
	name string
}

// NewCache creates an empty cache.
func NewCache() *Cache { return &Cache{entries: make(map[cacheKey]*ACL)} }

// Get returns a cached ACL. The returned present flag distinguishes
// "cached as having no ACL" (nil, true) from "not cached" (nil,
// false).
func (c *Cache) Get(dir []byte, name string) (acl *ACL, present bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.entries[cacheKey{string(dir), name}]
	if ok {
		c.hits.Add(1)
		return a, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put caches an ACL (nil records the absence of one).
func (c *Cache) Put(dir []byte, name string, acl *ACL) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[cacheKey{string(dir), name}] = acl
}

// Invalidate drops the entry for (dir, name).
func (c *Cache) Invalidate(dir []byte, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, cacheKey{string(dir), name})
}

// InvalidateAll clears the cache (proxy reconfiguration).
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[cacheKey]*ACL)
}

// Stats reports hit/miss counters.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
