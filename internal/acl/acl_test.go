package acl

import (
	"strings"
	"testing"

	"repro/internal/vfs"
)

const aliceDN = "/C=US/O=SGFS Grid/OU=users/CN=alice"
const bobDN = "/C=US/O=SGFS Grid/OU=users/CN=bob"

func TestParseLetters(t *testing.T) {
	a, err := Parse(strings.NewReader(`
"` + aliceDN + `" rwx
"` + bobDN + `" r
`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Check(aliceDN) != PermAll {
		t.Fatalf("alice mask %#x", a.Check(aliceDN))
	}
	if a.Check(bobDN) != PermRead {
		t.Fatalf("bob mask %#x", a.Check(bobDN))
	}
	if a.Check("/CN=stranger") != 0 {
		t.Fatal("stranger granted access")
	}
}

func TestParseNumericMask(t *testing.T) {
	a, err := Parse(strings.NewReader(`"` + aliceDN + `" 0x2f`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Check(aliceDN) != 0x2f {
		t.Fatalf("mask %#x", a.Check(aliceDN))
	}
}

func TestExplicitDeny(t *testing.T) {
	a := New()
	a.Grant(aliceDN, PermAll)
	a.Deny(bobDN)
	if !a.Has(bobDN) || a.Check(bobDN) != 0 {
		t.Fatal("explicit deny not recorded")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	a := New()
	a.Grant(aliceDN, PermRead|PermWrite)
	a.Grant(bobDN, PermRead)
	b, err := ParseBytes(a.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if b.Check(aliceDN) != PermRead|PermWrite || b.Check(bobDN) != PermRead {
		t.Fatal("round trip mangled masks")
	}
}

func TestParsePermVariants(t *testing.T) {
	cases := map[string]uint32{
		"r": PermRead, "w": PermWrite, "x": PermExec,
		"rw": PermRead | PermWrite, "rwx": PermAll, "-": 0,
		"19": 19, "0x3f": 0x3f,
	}
	for spec, want := range cases {
		got, err := ParsePerm(spec)
		if err != nil || got != want {
			t.Errorf("ParsePerm(%q) = %#x, %v; want %#x", spec, got, err, want)
		}
	}
	if _, err := ParsePerm("banana"); err == nil {
		t.Error("accepted garbage spec")
	}
	if _, err := ParsePerm(""); err == nil {
		t.Error("accepted empty spec")
	}
}

func TestFileNameConventions(t *testing.T) {
	if FileName("data.txt") != ".data.txt.acl" {
		t.Fatalf("got %q", FileName("data.txt"))
	}
	for name, want := range map[string]bool{
		".data.txt.acl": true,
		".x.acl":        true,
		"data.txt":      false,
		".acl":          false,
		".hidden":       false,
	} {
		if IsACLFile(name) != want {
			t.Errorf("IsACLFile(%q) != %v", name, want)
		}
	}
}

func TestPermMaskCoversNFSBits(t *testing.T) {
	// The rwx shorthand must cover exactly the NFSv3 ACCESS bits.
	if PermRead != vfs.AccessRead|vfs.AccessLookup {
		t.Fatal("PermRead drifted")
	}
	if PermWrite != vfs.AccessModify|vfs.AccessExtend|vfs.AccessDelete {
		t.Fatal("PermWrite drifted")
	}
}

func TestCache(t *testing.T) {
	c := NewCache()
	dir := []byte("dirhandle")
	if _, present := c.Get(dir, "f"); present {
		t.Fatal("empty cache claimed presence")
	}
	a := New()
	a.Grant(aliceDN, PermRead)
	c.Put(dir, "f", a)
	got, present := c.Get(dir, "f")
	if !present || got.Check(aliceDN) != PermRead {
		t.Fatal("cache lost ACL")
	}
	// Negative caching: absence is cacheable.
	c.Put(dir, "none", nil)
	got, present = c.Get(dir, "none")
	if !present || got != nil {
		t.Fatal("negative entry mishandled")
	}
	c.Invalidate(dir, "f")
	if _, present := c.Get(dir, "f"); present {
		t.Fatal("invalidate failed")
	}
	c.Put(dir, "f", a)
	c.InvalidateAll()
	if _, present := c.Get(dir, "f"); present {
		t.Fatal("invalidate-all failed")
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats not counting: %d/%d", hits, misses)
	}
}
