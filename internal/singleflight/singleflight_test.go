package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoSerial(t *testing.T) {
	t.Parallel()
	var g Group[int]
	v, err, shared := g.Do("k", func() (int, error) { return 42, nil })
	if v != 42 || err != nil || shared {
		t.Fatalf("Do = %d, %v, %v; want 42, nil, false", v, err, shared)
	}
	// The key is forgotten: a second call runs fn again.
	v, err, shared = g.Do("k", func() (int, error) { return 7, nil })
	if v != 7 || err != nil || shared {
		t.Fatalf("second Do = %d, %v, %v; want 7, nil, false", v, err, shared)
	}
}

func TestDoError(t *testing.T) {
	t.Parallel()
	var g Group[int]
	want := errors.New("boom")
	_, err, _ := g.Do("k", func() (int, error) { return 0, want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v; want %v", err, want)
	}
}

func TestDoDedup(t *testing.T) {
	t.Parallel()
	var g Group[string]
	var calls atomic.Int32
	release := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	results := make([]string, n)
	sharedCount := atomic.Int32{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do("key", func() (string, error) {
				calls.Add(1)
				<-release
				return "value", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
			if shared {
				sharedCount.Add(1)
			}
		}(i)
	}
	// Let the goroutines pile up on the in-flight call, then release.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times; want 1", got)
	}
	for i, r := range results {
		if r != "value" {
			t.Fatalf("caller %d got %q", i, r)
		}
	}
	if sharedCount.Load() != n-1 {
		t.Fatalf("shared for %d callers; want %d", sharedCount.Load(), n-1)
	}
}

func TestDoDistinctKeys(t *testing.T) {
	t.Parallel()
	var g Group[int]
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, _ := g.Do(Key([]byte("fh"), uint64(i)), func() (int, error) {
				calls.Add(1)
				return i, nil
			})
			if v != i {
				t.Errorf("key %d got %d", i, v)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() != 8 {
		t.Fatalf("fn ran %d times; want 8", calls.Load())
	}
}

func TestDoPanicReleasesWaiters(t *testing.T) {
	t.Parallel()
	var g Group[int]
	func() {
		defer func() { recover() }()
		g.Do("k", func() (int, error) { panic("fn exploded") })
	}()
	// The key must be forgotten and c.done closed; a fresh Do works.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if v, err, _ := g.Do("k", func() (int, error) { return 1, nil }); v != 1 || err != nil {
			t.Errorf("Do after panic = %d, %v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do after panic hung")
	}
}

func TestKeyUniqueness(t *testing.T) {
	t.Parallel()
	seen := map[string]bool{}
	fhs := [][]byte{[]byte("a"), []byte("a\x00"), []byte("ab"), {0, 1, 2}}
	for _, fh := range fhs {
		for idx := uint64(0); idx < 40; idx++ {
			k := Key(fh, idx)
			if seen[k] {
				t.Fatalf("collision for fh %q idx %d", fh, idx)
			}
			seen[k] = true
		}
	}
}

func TestPoolRunsWork(t *testing.T) {
	t.Parallel()
	p := NewPool(4)
	var ran atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		if !p.TryGo(func() { ran.Add(1); wg.Done() }) {
			wg.Done()
		}
	}
	wg.Wait()
	p.Close()
	if ran.Load() == 0 {
		t.Fatal("no submitted task ran")
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	t.Parallel()
	const workers = 3
	p := NewPool(workers)
	defer p.Close()
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		ok := p.TryGo(func() {
			defer wg.Done()
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
		if !ok {
			wg.Done()
		}
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks; pool size %d", p, workers)
	}
}

func TestPoolShedsWhenSaturated(t *testing.T) {
	t.Parallel()
	p := NewPool(1)
	defer p.Close()
	block := make(chan struct{})
	defer close(block)
	p.TryGo(func() { <-block })
	// One task is running; the buffer holds one more; everything after
	// that must be shed without blocking.
	shed := false
	for i := 0; i < 10; i++ {
		if !p.TryGo(func() {}) {
			shed = true
			break
		}
	}
	if !shed {
		t.Fatal("saturated pool accepted unbounded work")
	}
}

func TestPoolCloseDrainsAndRejects(t *testing.T) {
	t.Parallel()
	p := NewPool(2)
	var ran atomic.Int32
	for i := 0; i < 4; i++ {
		p.TryGo(func() {
			time.Sleep(5 * time.Millisecond)
			ran.Add(1)
		})
	}
	accepted := ran.Load() // racy lower bound only; Close gives the real answer
	_ = accepted
	p.Close()
	if ran.Load() == 0 {
		t.Fatal("Close did not wait for queued work")
	}
	if p.TryGo(func() { t.Error("task ran after Close") }) {
		t.Fatal("TryGo succeeded after Close")
	}
	p.Close() // idempotent
}
