// Package singleflight provides duplicate-call suppression and a small
// bounded worker pool, the two concurrency primitives behind the
// pipelined WAN data path: the single-flight Group guarantees that
// concurrent NFS clients and the readahead machinery never issue the
// same upstream READ twice, and the Pool bounds how many background
// prefetches (or flush writes) run at once.
//
// The Group is modelled on golang.org/x/sync/singleflight but is
// generic over the result type and deliberately smaller: no Forget, no
// DoChan, no shared-result copying — callers must treat the returned
// value as read-only when shared is true.
package singleflight

import (
	"strconv"
	"sync"
)

// call is an in-flight or completed Do invocation.
type call[V any] struct {
	done chan struct{} // closed when val/err are set
	val  V
	err  error
}

// Group suppresses duplicate function calls by key. The zero value is
// ready to use.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]
}

// Do executes fn exactly once for all concurrent callers presenting the
// same key, returning the shared result to each. shared reports whether
// this caller received a result produced by another caller's fn (and so
// must not mutate it). The key is forgotten once fn returns: later Do
// calls run fn again.
func (g *Group[V]) Do(key string, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	if g.m == nil {
		g.m = make(map[string]*call[V])
	}
	c := &call[V]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	// Complete the call even if fn panics, so waiters are never
	// stranded on c.done; the panic propagates to this caller.
	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}

// Key builds a Group key for a (file handle, block index) pair. File
// handles are opaque bytes and may embed NULs, so the separator cannot
// collide with a handle prefix in practice: index digits are base-36
// and never NUL.
func Key(fh []byte, idx uint64) string {
	return string(fh) + "\x00" + strconv.FormatUint(idx, 36)
}

// Pool is a fixed-size worker pool for background tasks that must be
// bounded (readahead, parallel flush). Unlike `go fn()`, a Pool never
// lets bursty callers pile up goroutines: TryGo drops work when every
// worker is busy and the submission buffer is full, which is the right
// policy for prefetch (the foreground read path will fetch the block
// itself if the hint is dropped).
type Pool struct {
	jobs chan func()
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts n workers (minimum 1). The submission buffer is n
// deep, so up to n tasks can queue behind the running ones before
// TryGo starts shedding.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{jobs: make(chan func(), n)}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				fn()
			}
		}()
	}
	return p
}

// TryGo submits fn for asynchronous execution, returning false if the
// pool is saturated or closed. It never blocks.
func (p *Pool) TryGo(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- fn:
		return true
	default:
		return false
	}
}

// Close stops accepting work and waits for the workers to finish the
// tasks already queued. It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
