package securechan

import (
	"bytes"
	"crypto/rand"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gridsec"
)

type testPKI struct {
	ca     *gridsec.CA
	client *gridsec.Credential
	server *gridsec.Credential
}

func newPKI(t *testing.T) *testPKI {
	t.Helper()
	ca, err := gridsec.NewCA("ChanTest Grid")
	if err != nil {
		t.Fatal(err)
	}
	client, err := ca.IssueUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	server, err := ca.IssueHost("fs1")
	if err != nil {
		t.Fatal(err)
	}
	return &testPKI{ca: ca, client: client, server: server}
}

// handshakePair establishes a channel over an in-memory pipe.
func handshakePair(t *testing.T, pki *testPKI, ccfg, scfg *Config) (*Conn, *Conn) {
	t.Helper()
	cc, sc, cerr, serr := tryHandshake(pki, ccfg, scfg)
	if cerr != nil {
		t.Fatalf("client handshake: %v", cerr)
	}
	if serr != nil {
		t.Fatalf("server handshake: %v", serr)
	}
	t.Cleanup(func() { cc.Close(); sc.Close() })
	return cc, sc
}

func tryHandshake(pki *testPKI, ccfg, scfg *Config) (*Conn, *Conn, error, error) {
	if ccfg == nil {
		ccfg = &Config{Credential: pki.client, Roots: pki.ca.Pool()}
	}
	if scfg == nil {
		scfg = &Config{Credential: pki.server, Roots: pki.ca.Pool()}
	}
	a, b := net.Pipe()
	type res struct {
		c   *Conn
		err error
	}
	sch := make(chan res, 1)
	go func() {
		c, err := Server(b, scfg)
		sch <- res{c, err}
	}()
	cc, cerr := Client(a, ccfg)
	sres := <-sch
	return cc, sres.c, cerr, sres.err
}

func TestHandshakeAllSuites(t *testing.T) {
	pki := newPKI(t)
	for _, suite := range []Suite{SuiteNullSHA1, SuiteRC4SHA1, SuiteAES256SHA1} {
		t.Run(suite.String(), func(t *testing.T) {
			ccfg := &Config{Credential: pki.client, Roots: pki.ca.Pool(), Suites: []Suite{suite}}
			scfg := &Config{Credential: pki.server, Roots: pki.ca.Pool(), Suites: []Suite{suite}}
			cc, sc := handshakePair(t, pki, ccfg, scfg)
			if cc.Suite() != suite || sc.Suite() != suite {
				t.Fatalf("negotiated %v / %v, want %v", cc.Suite(), sc.Suite(), suite)
			}
			if cc.PeerDN() != pki.server.DN() {
				t.Fatalf("client saw peer %q", cc.PeerDN())
			}
			if sc.PeerDN() != pki.client.DN() {
				t.Fatalf("server saw peer %q", sc.PeerDN())
			}
			msg := []byte("sensitive grid data crossing domains")
			go cc.Write(msg)
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(sc, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatal("payload corrupted")
			}
			// And the reverse direction.
			go sc.Write([]byte("reply"))
			rep := make([]byte, 5)
			if _, err := io.ReadFull(cc, rep); err != nil {
				t.Fatal(err)
			}
			if string(rep) != "reply" {
				t.Fatalf("got %q", rep)
			}
		})
	}
}

func TestServerPreferenceWins(t *testing.T) {
	pki := newPKI(t)
	ccfg := &Config{Credential: pki.client, Roots: pki.ca.Pool(),
		Suites: []Suite{SuiteNullSHA1, SuiteAES256SHA1}}
	scfg := &Config{Credential: pki.server, Roots: pki.ca.Pool(),
		Suites: []Suite{SuiteAES256SHA1, SuiteNullSHA1}}
	cc, _ := handshakePair(t, pki, ccfg, scfg)
	if cc.Suite() != SuiteAES256SHA1 {
		t.Fatalf("negotiated %v, want server preference aes", cc.Suite())
	}
}

func TestNoCommonSuite(t *testing.T) {
	pki := newPKI(t)
	ccfg := &Config{Credential: pki.client, Roots: pki.ca.Pool(), Suites: []Suite{SuiteNullSHA1}}
	scfg := &Config{Credential: pki.server, Roots: pki.ca.Pool(), Suites: []Suite{SuiteAES256SHA1}}
	_, _, _, serr := tryHandshake(pki, ccfg, scfg)
	if !errors.Is(serr, ErrNoCommonSuite) {
		t.Fatalf("server error %v, want ErrNoCommonSuite", serr)
	}
}

func TestUntrustedClientRejected(t *testing.T) {
	pki := newPKI(t)
	rogue, _ := gridsec.NewCA("Rogue CA")
	mallory, _ := rogue.IssueUser("mallory")
	ccfg := &Config{Credential: mallory, Roots: pki.ca.Pool()}
	_, _, _, serr := tryHandshake(pki, ccfg, nil)
	if !errors.Is(serr, gridsec.ErrNotTrusted) {
		t.Fatalf("server error %v, want ErrNotTrusted", serr)
	}
}

func TestUntrustedServerRejected(t *testing.T) {
	pki := newPKI(t)
	rogue, _ := gridsec.NewCA("Rogue CA")
	fake, _ := rogue.IssueHost("fs1")
	scfg := &Config{Credential: fake, Roots: pki.ca.Pool()}
	_, _, cerr, _ := tryHandshake(pki, nil, scfg)
	if !errors.Is(cerr, gridsec.ErrNotTrusted) {
		t.Fatalf("client error %v, want ErrNotTrusted", cerr)
	}
}

func TestProxyCertificateAuthenticatesAsUser(t *testing.T) {
	pki := newPKI(t)
	proxy, err := pki.client.IssueProxy(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := &Config{Credential: proxy, Roots: pki.ca.Pool()}
	_, sc := handshakePair(t, pki, ccfg, nil)
	if sc.PeerDN() != pki.client.DN() {
		t.Fatalf("proxy session authenticated as %q, want %q", sc.PeerDN(), pki.client.DN())
	}
}

func TestVerifyPeerPolicyHook(t *testing.T) {
	pki := newPKI(t)
	scfg := &Config{Credential: pki.server, Roots: pki.ca.Pool(),
		VerifyPeer: func(dn string, _ []*x509.Certificate) error {
			return fmt.Errorf("DN %q not in gridmap", dn)
		}}
	_, _, _, serr := tryHandshake(pki, nil, scfg)
	if !errors.Is(serr, ErrPeerRejected) {
		t.Fatalf("got %v, want ErrPeerRejected", serr)
	}
}

func TestLargeTransfer(t *testing.T) {
	pki := newPKI(t)
	ccfg := &Config{Credential: pki.client, Roots: pki.ca.Pool(), Suites: []Suite{SuiteAES256SHA1}}
	cc, sc := handshakePair(t, pki, ccfg, nil)
	payload := make([]byte, 300*1024) // spans many records
	rand.Read(payload)
	go func() {
		cc.Write(payload)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(sc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large payload corrupted")
	}
}

func TestRekeyMidStream(t *testing.T) {
	pki := newPKI(t)
	cc, sc := handshakePair(t, pki, nil, nil)
	done := make(chan error, 1)
	go func() {
		if _, err := cc.Write([]byte("before")); err != nil {
			done <- err
			return
		}
		if err := cc.Rekey(); err != nil {
			done <- err
			return
		}
		_, err := cc.Write([]byte("after-rekey"))
		done <- err
	}()
	buf := make([]byte, 6)
	if _, err := io.ReadFull(sc, buf); err != nil {
		t.Fatal(err)
	}
	buf2 := make([]byte, 11)
	if _, err := io.ReadFull(sc, buf2); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "before" || string(buf2) != "after-rekey" {
		t.Fatalf("got %q / %q", buf, buf2)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	w, _ := cc.Generations()
	if w != 1 {
		t.Fatalf("client write generation %d, want 1", w)
	}
	_, r := sc.Generations()
	if r != 1 {
		t.Fatalf("server read generation %d, want 1", r)
	}
	_, _, rekeys := cc.Stats()
	if rekeys != 1 {
		t.Fatalf("rekeys %d", rekeys)
	}
}

func TestMultipleRekeys(t *testing.T) {
	pki := newPKI(t)
	cc, sc := handshakePair(t, pki, nil, nil)
	go func() {
		for i := 0; i < 5; i++ {
			cc.Write([]byte{byte(i)})
			cc.Rekey()
		}
		cc.Write([]byte{99})
	}()
	got := make([]byte, 6)
	if _, err := io.ReadFull(sc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0, 1, 2, 3, 4, 99}) {
		t.Fatalf("got %v", got)
	}
}

func TestTamperedRecordDetected(t *testing.T) {
	pki := newPKI(t)
	// A hostile frame-aware relay sits between client and server. It
	// passes handshake frames untouched and flips one ciphertext bit in
	// the first data record; the reader must detect the forgery.
	a, b := net.Pipe()         // server side: a
	mitmA, mitmB := net.Pipe() // client side: mitmA
	go func() {
		var hdr [5]byte
		for {
			if _, err := io.ReadFull(mitmB, hdr[:]); err != nil {
				return
			}
			n := int(hdr[1])<<24 | int(hdr[2])<<16 | int(hdr[3])<<8 | int(hdr[4])
			body := make([]byte, n)
			if _, err := io.ReadFull(mitmB, body); err != nil {
				return
			}
			if hdr[0] == recData && n > 0 {
				body[n/2] ^= 0x40
			}
			if _, err := b.Write(hdr[:]); err != nil {
				return
			}
			if _, err := b.Write(body); err != nil {
				return
			}
		}
	}()
	go io.Copy(mitmB, b) // server -> client direction passes through

	type res struct {
		c   *Conn
		err error
	}
	sch := make(chan res, 1)
	go func() {
		c, err := Server(a, &Config{Credential: pki.server, Roots: pki.ca.Pool()})
		sch <- res{c, err}
	}()
	cc, err := Client(mitmA, &Config{Credential: pki.client, Roots: pki.ca.Pool()})
	if err != nil {
		t.Fatal(err)
	}
	sres := <-sch
	if sres.err != nil {
		t.Fatal(sres.err)
	}
	defer cc.Close()
	defer sres.c.Close()

	go cc.Write(bytes.Repeat([]byte("x"), 512))
	buf := make([]byte, 1024)
	_, readErr := sres.c.Read(buf)
	if !errors.Is(readErr, ErrRecordMAC) {
		t.Fatalf("tampering produced %v, want ErrRecordMAC", readErr)
	}
}

func TestCloseDeliversEOF(t *testing.T) {
	pki := newPKI(t)
	cc, sc := handshakePair(t, pki, nil, nil)
	go cc.Close()
	buf := make([]byte, 8)
	_, err := sc.Read(buf)
	if err != io.EOF {
		t.Fatalf("got %v, want EOF", err)
	}
}

func TestNullSuiteLeavesPlaintextVisible(t *testing.T) {
	// sgfs-sha trades privacy for speed: the wire carries plaintext.
	// This test documents that property (integrity is still enforced).
	s, err := newSealer(SuiteNullSHA1, nil, make([]byte, 20))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.seal(recData, []byte("visible"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(rec, []byte("visible")) {
		t.Fatal("null suite should not hide plaintext")
	}
}

func TestAESSuiteHidesPlaintext(t *testing.T) {
	key := make([]byte, 32)
	rand.Read(key)
	s, err := newSealer(SuiteAES256SHA1, key, make([]byte, 20))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.seal(recData, []byte("secret-seismic-survey"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(rec, []byte("secret")) {
		t.Fatal("AES suite leaked plaintext")
	}
}

func TestSealerReplayRejected(t *testing.T) {
	// Replaying a record fails because the MAC covers the sequence
	// number.
	key := make([]byte, 32)
	mkey := make([]byte, 20)
	rand.Read(key)
	rand.Read(mkey)
	enc, _ := newSealer(SuiteAES256SHA1, key, mkey)
	dec, _ := newSealer(SuiteAES256SHA1, key, mkey)
	r1, _ := enc.seal(recData, []byte("one"))
	if _, err := dec.open(recData, r1); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.open(recData, r1); !errors.Is(err, ErrRecordMAC) {
		t.Fatalf("replay accepted: %v", err)
	}
}

func TestQuickSealOpenRoundTrip(t *testing.T) {
	for _, suite := range []Suite{SuiteNullSHA1, SuiteRC4SHA1, SuiteAES256SHA1} {
		suite := suite
		t.Run(suite.String(), func(t *testing.T) {
			encKey := make([]byte, suite.keyLen())
			macKey := make([]byte, 20)
			rand.Read(encKey)
			rand.Read(macKey)
			enc, err := newSealer(suite, encKey, macKey)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := newSealer(suite, encKey, macKey)
			if err != nil {
				t.Fatal(err)
			}
			f := func(p []byte) bool {
				rec, err := enc.seal(recData, p)
				if err != nil {
					return false
				}
				got, err := dec.open(recData, rec)
				if err != nil {
					return false
				}
				return bytes.Equal(got, p)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestParseSuite(t *testing.T) {
	cases := map[string]Suite{
		"aes": SuiteAES256SHA1, "rc4": SuiteRC4SHA1, "sha": SuiteNullSHA1,
		"aes256cbc-sha1": SuiteAES256SHA1, "rc4128-sha1": SuiteRC4SHA1, "null-sha1": SuiteNullSHA1,
	}
	for name, want := range cases {
		got, err := ParseSuite(name)
		if err != nil || got != want {
			t.Errorf("ParseSuite(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseSuite("des"); err == nil {
		t.Error("expected error for unknown suite")
	}
}

func TestAutoRekey(t *testing.T) {
	pki := newPKI(t)
	cc, sc := handshakePair(t, pki, nil, nil)
	cc.StartAutoRekey(10 * time.Millisecond)
	deadline := time.After(2 * time.Second)
	// Keep traffic flowing so the server processes rekey records.
	for {
		select {
		case <-deadline:
			t.Fatal("no rekey observed within deadline")
		default:
		}
		go cc.Write([]byte("ping"))
		buf := make([]byte, 4)
		if _, err := io.ReadFull(sc, buf); err != nil {
			t.Fatal(err)
		}
		if _, _, rekeys := cc.Stats(); rekeys >= 2 {
			_, r := sc.Generations()
			if r < 2 {
				t.Fatalf("server read generation %d after %d rekeys", r, rekeys)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
