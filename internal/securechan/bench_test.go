package securechan

import (
	"crypto/rand"
	"testing"
)

// BenchmarkSealOpen measures the record-layer hot path (one full-size
// data record sealed and opened) per suite, tracking allocs/op: with
// the scratch-buffer reuse the steady state should stay near zero for
// the seal side.
func BenchmarkSealOpen(b *testing.B) {
	for _, suite := range []Suite{SuiteNullSHA1, SuiteRC4SHA1, SuiteAES256SHA1} {
		b.Run(suite.String(), func(b *testing.B) {
			encKey := make([]byte, suite.keyLen())
			macKey := make([]byte, 20)
			rand.Read(encKey)
			rand.Read(macKey)
			enc, err := newSealer(suite, encKey, macKey)
			if err != nil {
				b.Fatal(err)
			}
			dec, err := newSealer(suite, encKey, macKey)
			if err != nil {
				b.Fatal(err)
			}
			plaintext := make([]byte, maxRecordPlaintext)
			rand.Read(plaintext)
			var scratch []byte
			b.SetBytes(maxRecordPlaintext)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, err := enc.sealTo(scratch[:0], recData, plaintext)
				if err != nil {
					b.Fatal(err)
				}
				scratch = rec[:0]
				if _, err := dec.open(recData, rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
