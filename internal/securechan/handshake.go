package securechan

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/gridsec"
	"repro/internal/metrics"
	"repro/internal/xdr"
)

// protocolVersion is the handshake protocol version.
const protocolVersion = 1

// Handshake / alert errors.
var (
	ErrNoCommonSuite = errors.New("securechan: no cipher suite in common")
	ErrBadSignature  = errors.New("securechan: handshake signature verification failed")
	ErrBadFinished   = errors.New("securechan: finished MAC verification failed")
	ErrPeerRejected  = errors.New("securechan: peer identity rejected by policy")
)

// hello is the first flight from each side: identity material plus key
// exchange input. The same wire shape serves client and server; the
// server's hello carries exactly one suite (the chosen one) and a
// transcript signature.
type hello struct {
	Version uint32
	Random  [32]byte
	Suites  []Suite
	Chain   [][]byte // DER certificates, leaf first
	ECDHPub []byte   // P-256 uncompressed point
	Sig     []byte   // server only: ECDSA over transcript
}

func (h *hello) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(h.Version)
	e.FixedOpaque(h.Random[:])
	e.Uint32(uint32(len(h.Suites)))
	for _, s := range h.Suites {
		e.Uint32(uint32(s))
	}
	e.Uint32(uint32(len(h.Chain)))
	for _, c := range h.Chain {
		e.Opaque(c)
	}
	e.Opaque(h.ECDHPub)
	e.Opaque(h.Sig)
}

func (h *hello) DecodeXDR(d *xdr.Decoder) {
	h.Version = d.Uint32()
	d.FixedOpaque(h.Random[:])
	n := d.Uint32()
	if n > 16 {
		d.SetErr(errors.New("securechan: too many suites"))
		return
	}
	h.Suites = make([]Suite, n)
	for i := range h.Suites {
		h.Suites[i] = Suite(d.Uint32())
	}
	m := d.Uint32()
	if m > 8 {
		d.SetErr(errors.New("securechan: certificate chain too deep"))
		return
	}
	h.Chain = make([][]byte, m)
	for i := range h.Chain {
		h.Chain[i] = d.Opaque()
	}
	h.ECDHPub = d.Opaque()
	h.Sig = d.Opaque()
}

// finished closes the handshake from each side: a signature proving
// possession of the presented certificate's key (client only; the
// server signs inside its hello) and a MAC binding the whole
// transcript to the derived master secret.
type finished struct {
	Sig []byte
	MAC []byte
}

func (f *finished) EncodeXDR(e *xdr.Encoder) { e.Opaque(f.Sig); e.Opaque(f.MAC) }
func (f *finished) DecodeXDR(d *xdr.Decoder) { f.Sig = d.Opaque(); f.MAC = d.Opaque() }

// Config configures one endpoint of a secure channel.
type Config struct {
	// Credential is the local identity (or proxy) certificate and key.
	Credential *gridsec.Credential
	// Roots are the trusted CA certificates for verifying the peer.
	Roots *x509.CertPool
	// Suites lists acceptable suites in preference order. The server's
	// preference wins. Empty means all suites, strongest first.
	Suites []Suite
	// SelfCertifying skips CA chain validation: the peer's leaf
	// certificate is accepted as-is and VerifyPeer (which becomes
	// mandatory) must authenticate it by key fingerprint. This is the
	// trust model of the SFS baseline, where the server's public key
	// hash is embedded in the self-certifying pathname.
	SelfCertifying bool
	// HandshakeTimeout bounds the handshake (default 30s; negative
	// disables). It protects servers from peers that connect and
	// stall, and clients from unresponsive or hostile servers.
	HandshakeTimeout time.Duration
	// Meter, when non-nil, accumulates time spent in record
	// cryptography (seal/open) — the proxy CPU cost the paper's
	// Figures 5 and 6 chart.
	Meter *metrics.Meter
	// VerifyPeer, when non-nil, is invoked with the peer's effective
	// grid DN and verified chain after certificate validation; a
	// non-nil return aborts the handshake. SGFS's server-side proxy
	// uses this to enforce the session gridmap at connection time.
	VerifyPeer func(dn string, chain []*x509.Certificate) error
}

func (c *Config) suites() []Suite {
	if len(c.Suites) > 0 {
		return c.Suites
	}
	return []Suite{SuiteAES256SHA1, SuiteRC4SHA1, SuiteNullSHA1}
}

func (c *Config) check() error {
	if c.Credential == nil {
		return errors.New("securechan: config missing credential")
	}
	if c.SelfCertifying {
		if c.VerifyPeer == nil {
			return errors.New("securechan: self-certifying mode requires VerifyPeer")
		}
		return nil
	}
	if c.Roots == nil {
		return errors.New("securechan: config missing trust roots")
	}
	return nil
}

// handshakeState accumulates the transcript and key exchange.
type handshakeState struct {
	transcript *transcript
	ecdhKey    *ecdh.PrivateKey
	master     []byte
	peerChain  []*x509.Certificate
	peerDN     string
	suite      Suite
	clientRand [32]byte
	serverRand [32]byte
}

type transcript struct{ h [][]byte }

func (t *transcript) add(b []byte) { t.h = append(t.h, b) }
func (t *transcript) sum() []byte {
	h := sha256.New()
	for _, m := range t.h {
		h.Write(m)
	}
	return h.Sum(nil)
}

// writeHandshakeMsg frames a handshake message with a 4-byte length.
func writeHandshakeMsg(conn net.Conn, v xdr.Marshaler) ([]byte, error) {
	b, err := xdr.Marshal(v)
	if err != nil {
		return nil, err
	}
	if err := writeFrameCold(conn, recHandshake, b); err != nil {
		return nil, err
	}
	return b, nil
}

func readHandshakeMsg(conn net.Conn, v xdr.Unmarshaler) ([]byte, error) {
	var hdr [5]byte
	typ, b, err := readFrame(conn, nil, &hdr)
	if err != nil {
		return nil, err
	}
	if typ != recHandshake {
		return nil, fmt.Errorf("securechan: expected handshake record, got type %d", typ)
	}
	if err := xdr.Unmarshal(b, v); err != nil {
		return nil, err
	}
	return b, nil
}

func newECDH() (*ecdh.PrivateKey, error) {
	return ecdh.P256().GenerateKey(rand.Reader)
}

func verifyPeerChain(cfg *Config, raw [][]byte) ([]*x509.Certificate, string, error) {
	if len(raw) == 0 {
		return nil, "", gridsec.ErrEmptyChain
	}
	chain := make([]*x509.Certificate, len(raw))
	for i, der := range raw {
		c, err := x509.ParseCertificate(der)
		if err != nil {
			return nil, "", fmt.Errorf("securechan: parse peer certificate: %w", err)
		}
		chain[i] = c
	}
	var dn string
	if cfg.SelfCertifying {
		dn = gridsec.DN(chain[0])
	} else {
		var err error
		dn, err = gridsec.VerifyChain(chain, cfg.Roots)
		if err != nil {
			return nil, "", err
		}
	}
	if cfg.VerifyPeer != nil {
		if err := cfg.VerifyPeer(dn, chain); err != nil {
			return nil, "", fmt.Errorf("%w: %v", ErrPeerRejected, err)
		}
	}
	return chain, dn, nil
}

// hkdfExpand derives length bytes from secret and label using the
// HMAC-SHA256 expand construction (RFC 5869 without the extract step;
// the ECDH shared secret already has full entropy).
func hkdfExpand(secret []byte, label string, context []byte, length int) []byte {
	var out []byte
	var prev []byte
	counter := byte(1)
	for len(out) < length {
		h := hmac.New(sha256.New, secret)
		h.Write(prev)
		io.WriteString(h, label)
		h.Write(context)
		h.Write([]byte{counter})
		prev = h.Sum(nil)
		out = append(out, prev...)
		counter++
	}
	return out[:length]
}

// deriveMaster turns the ECDH shared secret into the master secret and
// consumes it: the input is zeroed and the ephemeral key dropped, so
// after derivation the master is the only handshake secret still live.
func (hs *handshakeState) deriveMaster(shared []byte) {
	ctx := append(append([]byte{}, hs.clientRand[:]...), hs.serverRand[:]...)
	hs.master = hkdfExpand(shared, "sgfs master secret", ctx, 48)
	clear(shared)
	hs.ecdhKey = nil
}

// directionKeys derives the encryption and MAC keys for one direction
// and generation.
func (hs *handshakeState) directionKeys(client bool, generation uint32) (encKey, macKey []byte) {
	dir := "server write"
	if client {
		dir = "client write"
	}
	ctx := []byte{byte(generation >> 24), byte(generation >> 16), byte(generation >> 8), byte(generation)}
	material := hkdfExpand(hs.master, "sgfs keys "+dir, ctx, hs.suite.keyLen()+32)
	return material[:hs.suite.keyLen()], material[hs.suite.keyLen():]
}

func (hs *handshakeState) finishedMAC(label string) []byte {
	h := hmac.New(sha256.New, hs.master)
	io.WriteString(h, label)
	h.Write(hs.transcript.sum())
	return h.Sum(nil)
}

// sign produces an ECDSA signature over the current transcript hash.
func sign(cred *gridsec.Credential, t *transcript) ([]byte, error) {
	return ecdsa.SignASN1(rand.Reader, cred.Key, t.sum())
}

// verifySig checks an ECDSA signature over the transcript hash against
// the peer's leaf certificate.
func verifySig(leaf *x509.Certificate, t *transcript, sig []byte) error {
	pub, ok := leaf.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return errors.New("securechan: peer certificate key is not ECDSA")
	}
	if !ecdsa.VerifyASN1(pub, t.sum(), sig) {
		return ErrBadSignature
	}
	return nil
}

// chooseSuite picks the first of the server's preferences that the
// client offered.
func chooseSuite(serverPrefs, clientOffer []Suite) (Suite, error) {
	for _, s := range serverPrefs {
		for _, c := range clientOffer {
			if s == c {
				return s, nil
			}
		}
	}
	return 0, ErrNoCommonSuite
}
