package securechan

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/xdr"
)

// Record types on the wire.
const (
	recHandshake = 1
	recData      = 2
	recRekey     = 3
	recClose     = 4
)

// maxRecordPlaintext is the largest plaintext carried in one record.
const maxRecordPlaintext = 16 * 1024

// maxFrame bounds an incoming frame body.
const maxFrame = maxRecordPlaintext + 1024

// ErrChannelClosed is returned after the channel is closed locally or
// by the peer.
var ErrChannelClosed = errors.New("securechan: channel closed")

// writeFrame writes a [type u8 | len u32 | body] frame. A local header
// array would escape to the heap on every call (it is written through
// the net.Conn interface), so cold paths use it via the writeFrameCold
// wrapper and the record hot path passes the Conn's scratch header.
func writeFrame(w io.Writer, typ byte, body []byte, hdr *[5]byte) error {
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// writeFrameCold is writeFrame with per-call header scratch, for
// handshake and teardown paths where one allocation does not matter.
func writeFrameCold(w io.Writer, typ byte, body []byte) error {
	var hdr [5]byte
	return writeFrame(w, typ, body, &hdr)
}

// readFrame reads one frame, reusing buf when possible. hdr is
// caller-owned header scratch, as in writeFrame.
func readFrame(r io.Reader, buf []byte, hdr *[5]byte) (byte, []byte, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("securechan: frame of %d bytes exceeds limit", n)
	}
	var body []byte
	if int(n) <= cap(buf) {
		body = buf[:n]
	} else {
		body = make([]byte, n)
	}
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return hdr[0], body, nil
}

// Conn is an established secure channel. It implements net.Conn; the
// byte stream written on one side is delivered authenticated (and,
// depending on the suite, encrypted) to the other.
type Conn struct {
	raw net.Conn

	meter *metrics.Meter

	suite  Suite
	master []byte
	hs     *handshakeState
	client bool

	peerChain []*x509.Certificate
	peerDN    string

	readMu    sync.Mutex
	rSealer   *sealer
	rGen      uint32
	rbuf      []byte // decrypted bytes not yet returned by Read
	frameBuf  []byte
	rFrameHdr [5]byte // readFrame header scratch, guarded by readMu
	rerr      error

	writeMu   sync.Mutex
	wSealer   *sealer
	wGen      uint32
	wScratch  []byte  // reusable seal output, guarded by writeMu
	wFrameHdr [5]byte // writeFrame header scratch, guarded by writeMu
	werr      error

	closeOnce sync.Once

	rekeyStop chan struct{}

	// Stats
	statMu   sync.Mutex
	bytesIn  uint64
	bytesOut uint64
	rekeys   uint64
}

// Client performs the initiating side of the handshake over conn. On
// handshake failure the raw connection is closed: a half-established
// channel is useless and closing it promptly unblocks the peer.
func Client(conn net.Conn, cfg *Config) (*Conn, error) {
	restore, err := handshakeDeadline(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c, err := clientHandshake(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	restore()
	return c, nil
}

// handshakeDeadline arms the handshake timeout and returns the
// function that clears it after success.
func handshakeDeadline(conn net.Conn, cfg *Config) (func(), error) {
	timeout := cfg.HandshakeTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	if timeout < 0 {
		return func() {}, nil
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	return func() { conn.SetDeadline(time.Time{}) }, nil
}

func clientHandshake(conn net.Conn, cfg *Config) (*Conn, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}

	hs := &handshakeState{transcript: &transcript{}}
	if _, err := rand.Read(hs.clientRand[:]); err != nil {
		return nil, err
	}
	ek, err := newECDH()
	if err != nil {
		return nil, err
	}
	hs.ecdhKey = ek

	ch := &hello{Version: protocolVersion, Random: hs.clientRand, Suites: cfg.suites(), Chain: rawChain(cfg), ECDHPub: ek.PublicKey().Bytes()}
	raw, err := writeHandshakeMsg(conn, ch)
	if err != nil {
		return nil, fmt.Errorf("securechan: send client hello: %w", err)
	}
	hs.transcript.add(raw)

	var sh hello
	raw, err = readHandshakeMsg(conn, &sh)
	if err != nil {
		return nil, fmt.Errorf("securechan: read server hello: %w", err)
	}
	if sh.Version != protocolVersion {
		return nil, fmt.Errorf("securechan: server speaks version %d", sh.Version)
	}
	if len(sh.Suites) != 1 {
		return nil, errors.New("securechan: server hello must select exactly one suite")
	}
	hs.suite = sh.Suites[0]
	if !offered(cfg.suites(), hs.suite) {
		return nil, fmt.Errorf("securechan: server chose unoffered suite %v", hs.suite)
	}
	hs.serverRand = sh.Random

	// Verify the server's identity and its signature over the
	// transcript-so-far plus its own hello (minus the signature field).
	peerChain, peerDN, err := verifyPeerChain(cfg, sh.Chain)
	if err != nil {
		return nil, err
	}
	sigless := sh
	sigless.Sig = nil
	unsignedRaw, err := marshalHello(&sigless)
	if err != nil {
		return nil, err
	}
	hs.transcript.add(unsignedRaw)
	if err := verifySig(peerChain[0], hs.transcript, sh.Sig); err != nil {
		return nil, err
	}
	hs.transcript.add(raw) // the signed form enters the transcript too
	hs.peerChain, hs.peerDN = peerChain, peerDN

	peerPub, err := ecdh.P256().NewPublicKey(sh.ECDHPub)
	if err != nil {
		return nil, fmt.Errorf("securechan: server ECDH key: %w", err)
	}
	shared, err := ek.ECDH(peerPub)
	if err != nil {
		return nil, err
	}
	hs.deriveMaster(shared)

	// Client finished: prove key possession and bind the transcript.
	sig, err := sign(cfg.Credential, hs.transcript)
	if err != nil {
		return nil, err
	}
	cf := &finished{Sig: sig, MAC: hs.finishedMAC("client finished")}
	raw, err = writeHandshakeMsg(conn, cf)
	if err != nil {
		return nil, err
	}
	hs.transcript.add(raw)

	var sf finished
	if _, err := readHandshakeMsg(conn, &sf); err != nil {
		return nil, fmt.Errorf("securechan: read server finished: %w", err)
	}
	if !hmac.Equal(sf.MAC, hs.finishedMAC("server finished")) {
		return nil, ErrBadFinished
	}

	c, err := newConn(conn, hs, true)
	if err == nil {
		c.meter = cfg.Meter
	}
	return c, err
}

// Server performs the accepting side of the handshake over conn. On
// handshake failure the raw connection is closed.
func Server(conn net.Conn, cfg *Config) (*Conn, error) {
	restore, err := handshakeDeadline(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c, err := serverHandshake(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	restore()
	return c, nil
}

func serverHandshake(conn net.Conn, cfg *Config) (*Conn, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	hs := &handshakeState{transcript: &transcript{}}
	if _, err := rand.Read(hs.serverRand[:]); err != nil {
		return nil, err
	}

	var ch hello
	raw, err := readHandshakeMsg(conn, &ch)
	if err != nil {
		return nil, fmt.Errorf("securechan: read client hello: %w", err)
	}
	if ch.Version != protocolVersion {
		return nil, fmt.Errorf("securechan: client speaks version %d", ch.Version)
	}
	hs.transcript.add(raw)
	hs.clientRand = ch.Random

	suite, err := chooseSuite(cfg.suites(), ch.Suites)
	if err != nil {
		return nil, err
	}
	hs.suite = suite

	peerChain, peerDN, err := verifyPeerChain(cfg, ch.Chain)
	if err != nil {
		return nil, err
	}
	hs.peerChain, hs.peerDN = peerChain, peerDN

	ek, err := newECDH()
	if err != nil {
		return nil, err
	}
	hs.ecdhKey = ek
	peerPub, err := ecdh.P256().NewPublicKey(ch.ECDHPub)
	if err != nil {
		return nil, fmt.Errorf("securechan: client ECDH key: %w", err)
	}
	shared, err := ek.ECDH(peerPub)
	if err != nil {
		return nil, err
	}

	sh := &hello{Version: protocolVersion, Random: hs.serverRand, Suites: []Suite{suite}, Chain: rawChain(cfg), ECDHPub: ek.PublicKey().Bytes()}
	unsignedRaw, err := marshalHello(sh)
	if err != nil {
		return nil, err
	}
	hs.transcript.add(unsignedRaw)
	sh.Sig, err = sign(cfg.Credential, hs.transcript)
	if err != nil {
		return nil, err
	}
	raw, err = writeHandshakeMsg(conn, sh)
	if err != nil {
		return nil, err
	}
	hs.transcript.add(raw)

	hs.deriveMaster(shared)

	var cf finished
	raw, err = readHandshakeMsg(conn, &cf)
	if err != nil {
		return nil, fmt.Errorf("securechan: read client finished: %w", err)
	}
	// The client signed the transcript before its finished message.
	if err := verifySig(peerChain[0], hs.transcript, cf.Sig); err != nil {
		return nil, err
	}
	if !hmac.Equal(cf.MAC, hs.finishedMAC("client finished")) {
		return nil, ErrBadFinished
	}
	hs.transcript.add(raw)

	sf := &finished{MAC: hs.finishedMAC("server finished")}
	if _, err := writeHandshakeMsg(conn, sf); err != nil {
		return nil, err
	}

	c, err := newConn(conn, hs, false)
	if err == nil {
		c.meter = cfg.Meter
	}
	return c, err
}

func rawChain(cfg *Config) [][]byte {
	out := make([][]byte, len(cfg.Credential.Chain))
	for i, c := range cfg.Credential.Chain {
		out[i] = c.Raw
	}
	return out
}

func marshalHello(h *hello) ([]byte, error) { return xdr.Marshal(h) }

func offered(suites []Suite, s Suite) bool {
	for _, o := range suites {
		if o == s {
			return true
		}
	}
	return false
}

func newConn(raw net.Conn, hs *handshakeState, client bool) (*Conn, error) {
	c := &Conn{
		raw:       raw,
		suite:     hs.suite,
		master:    hs.master,
		hs:        hs,
		client:    client,
		peerChain: hs.peerChain,
		peerDN:    hs.peerDN,
		rekeyStop: make(chan struct{}),
	}
	var err error
	encW, macW := hs.directionKeys(client, 0)
	if c.wSealer, err = newSealer(hs.suite, encW, macW); err != nil {
		return nil, err
	}
	encR, macR := hs.directionKeys(!client, 0)
	if c.rSealer, err = newSealer(hs.suite, encR, macR); err != nil {
		return nil, err
	}
	return c, nil
}

// PeerDN returns the peer's effective grid identity (the identity
// certificate's DN even when a proxy certificate was presented).
func (c *Conn) PeerDN() string { return c.peerDN }

// PeerChain returns the peer's verified certificate chain, leaf first.
func (c *Conn) PeerChain() []*x509.Certificate { return c.peerChain }

// Suite returns the negotiated cipher suite.
func (c *Conn) Suite() Suite { return c.suite }

// Generations returns the current write and read key generations; they
// advance on rekey.
func (c *Conn) Generations() (write, read uint32) {
	c.writeMu.Lock()
	write = c.wGen
	c.writeMu.Unlock()
	c.readMu.Lock()
	read = c.rGen
	c.readMu.Unlock()
	return
}

// Stats returns cumulative plaintext byte counts and rekey count.
func (c *Conn) Stats() (in, out, rekeys uint64) {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.bytesIn, c.bytesOut, c.rekeys
}

// Write encrypts and sends p, splitting into records as needed.
//
//sgfsvet:hot-path
func (c *Conn) Write(p []byte) (int, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.werr != nil {
		return 0, c.werr
	}
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxRecordPlaintext {
			n = maxRecordPlaintext
		}
		sealStart := time.Now()
		rec, err := c.wSealer.sealTo(c.wScratch[:0], recData, p[:n])
		if c.meter != nil {
			c.meter.Add(time.Since(sealStart))
		}
		if err != nil {
			c.werr = err
			return total, err
		}
		if err := writeFrame(c.raw, recData, rec, &c.wFrameHdr); err != nil {
			c.werr = err
			return total, err
		}
		// The frame is on the wire; keep the (possibly grown) record
		// storage for the next seal.
		c.wScratch = rec[:0]
		total += n
		p = p[n:]
	}
	c.statMu.Lock()
	c.bytesOut += uint64(total)
	c.statMu.Unlock()
	return total, nil
}

// Read returns decrypted stream bytes.
//
//sgfsvet:hot-path
func (c *Conn) Read(p []byte) (int, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	for len(c.rbuf) == 0 {
		if c.rerr != nil {
			return 0, c.rerr
		}
		typ, body, err := readFrame(c.raw, c.frameBuf, &c.rFrameHdr)
		if err != nil {
			c.rerr = err
			return 0, err
		}
		c.frameBuf = body[:0]
		switch typ {
		case recData:
			openStart := time.Now()
			pt, err := c.rSealer.open(recData, body)
			if c.meter != nil {
				c.meter.Add(time.Since(openStart))
			}
			if err != nil {
				c.rerr = err
				return 0, err
			}
			c.rbuf = pt
			c.statMu.Lock()
			c.bytesIn += uint64(len(pt))
			c.statMu.Unlock()
		case recRekey:
			if _, err := c.rSealer.open(recRekey, body); err != nil {
				c.rerr = err
				return 0, err
			}
			// The peer's write direction advances one generation.
			c.rGen++
			encR, macR := c.hs.directionKeys(!c.client, c.rGen)
			s, err := newSealer(c.suite, encR, macR)
			if err != nil {
				c.rerr = err
				return 0, err
			}
			c.rSealer = s
		case recClose:
			c.rerr = io.EOF
			return 0, io.EOF
		default:
			c.rerr = fmt.Errorf("securechan: unexpected record type %d", typ)
			return 0, c.rerr
		}
	}
	n := copy(p, c.rbuf)
	c.rbuf = c.rbuf[n:]
	return n, nil
}

// Rekey advances this side's write keys to the next generation,
// refreshing the session keying material without a new handshake. The
// peer switches its read keys upon receiving the rekey record, so no
// round trip or traffic pause is needed. The paper's proxies trigger
// this periodically for long-lived sessions (§4.2).
func (c *Conn) Rekey() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.werr != nil {
		return c.werr
	}
	rec, err := c.wSealer.seal(recRekey, nil)
	if err != nil {
		c.werr = err
		return err
	}
	if err := writeFrame(c.raw, recRekey, rec, &c.wFrameHdr); err != nil {
		c.werr = err
		return err
	}
	c.wGen++
	encW, macW := c.hs.directionKeys(c.client, c.wGen)
	s, err := newSealer(c.suite, encW, macW)
	if err != nil {
		c.werr = err
		return err
	}
	c.wSealer = s
	c.statMu.Lock()
	c.rekeys++
	c.statMu.Unlock()
	return nil
}

// StartAutoRekey launches a background goroutine that rekeys the write
// direction every interval until the channel closes, implementing the
// configuration-file timeout for periodic automatic renegotiation.
func (c *Conn) StartAutoRekey(interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := c.Rekey(); err != nil {
					return
				}
			case <-c.rekeyStop:
				return
			}
		}
	}()
}

// Close sends a close record (best effort) and tears down the
// transport.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.rekeyStop)
		c.writeMu.Lock()
		if c.werr == nil {
			// Best-effort close notification: bound the write so a
			// peer that has stopped reading cannot block Close.
			if rec, err := c.wSealer.seal(recClose, nil); err == nil {
				c.raw.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
				writeFrame(c.raw, recClose, rec, &c.wFrameHdr)
				c.raw.SetWriteDeadline(time.Time{})
			}
			c.werr = ErrChannelClosed
		}
		c.writeMu.Unlock()
		c.raw.Close()
	})
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.raw.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }
