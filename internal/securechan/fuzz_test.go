package securechan

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/xdr"
)

// TestServerHandshakeRobustAgainstGarbage confirms a hostile peer
// sending random bytes cannot crash or wedge the accepting side.
func TestServerHandshakeRobustAgainstGarbage(t *testing.T) {
	pki := newPKI(t)
	cfg := &Config{Credential: pki.server, Roots: pki.ca.Pool(), HandshakeTimeout: 300 * time.Millisecond}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 8; i++ {
		a, b := net.Pipe()
		// Draw the junk before spawning: a lingering goroutine from a
		// previous iteration must not share the rng.
		junk := make([]byte, rng.Intn(256)+1)
		rng.Read(junk)
		go func() {
			a.Write(junk)
			a.Close()
		}()
		done := make(chan error, 1)
		go func() {
			_, err := Server(b, cfg)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("garbage handshake succeeded")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("handshake hung on garbage")
		}
	}
}

// TestClientHandshakeRobustAgainstGarbage does the same for the
// initiating side (a hostile or broken server).
func TestClientHandshakeRobustAgainstGarbage(t *testing.T) {
	pki := newPKI(t)
	cfg := &Config{Credential: pki.client, Roots: pki.ca.Pool(), HandshakeTimeout: 300 * time.Millisecond}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 8; i++ {
		a, b := net.Pipe()
		junk := make([]byte, rng.Intn(256)+1)
		rng.Read(junk)
		go func() {
			// Swallow the client hello then answer with noise.
			buf := make([]byte, 4096)
			b.Read(buf)
			b.Write(junk)
			b.Close()
		}()
		done := make(chan error, 1)
		go func() {
			_, err := Client(a, cfg)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("client accepted a garbage handshake")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("client hung on garbage server")
		}
	}
}

// FuzzHandshakeDecodeRoundTrip fuzzes the handshake wire codecs. The
// handshake decoders face pre-authentication input — any TCP peer can
// send a hello before proving identity — so they must never panic and
// must bound what they allocate regardless of the length words in the
// input. Accepted input must also re-encode to a canonical fixed point
// (encode → decode → encode), dynamically cross-checking what the
// xdr-symmetry analyzer proves statically over these hand-written
// codecs.
func FuzzHandshakeDecodeRoundTrip(f *testing.F) {
	seedHello := &hello{
		Version: protocolVersion,
		Suites:  []Suite{SuiteAES256SHA1, SuiteRC4SHA1},
		Chain:   [][]byte{{0x30, 0x82, 0x01}, {0x30, 0x82, 0x02}},
		ECDHPub: bytes.Repeat([]byte{4}, 65),
		Sig:     []byte{0x30, 0x45},
	}
	seedHello.Random[0] = 0xaa
	seedFinished := &finished{Sig: []byte{0x30, 0x44}, MAC: bytes.Repeat([]byte{7}, 32)}
	for kind, msg := range []xdr.Marshaler{seedHello, seedFinished} {
		data, err := xdr.Marshal(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(kind, data)
	}
	f.Add(0, []byte{})
	f.Add(1, []byte{0, 0, 0, 0})

	fresh := func(kind int) interface {
		xdr.Marshaler
		xdr.Unmarshaler
	} {
		if kind == 0 {
			return &hello{}
		}
		return &finished{}
	}

	f.Fuzz(func(t *testing.T, kind int, data []byte) {
		if kind < 0 || kind > 1 {
			return
		}
		msg := fresh(kind)
		if err := xdr.Unmarshal(data, msg); err != nil {
			return // rejected input is fine; panics are not
		}
		first, err := xdr.Marshal(msg)
		if err != nil {
			t.Fatalf("re-encode of accepted %T failed: %v", msg, err)
		}
		again := fresh(kind)
		if err := xdr.Unmarshal(first, again); err != nil {
			t.Fatalf("decode of canonical %T encoding failed: %v", msg, err)
		}
		second, err := xdr.Marshal(again)
		if err != nil {
			t.Fatalf("second re-encode of %T failed: %v", msg, err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("%T encoding is not a fixed point:\n first=%x\nsecond=%x", msg, first, second)
		}
	})
}

// TestCryptoMeterAccounts verifies the Figures 5/6 hook: a metered
// channel accumulates seal/open time on both endpoints.
func TestCryptoMeterAccounts(t *testing.T) {
	pki := newPKI(t)
	var cm, sm metrics.Meter
	ccfg := &Config{Credential: pki.client, Roots: pki.ca.Pool(), Suites: []Suite{SuiteAES256SHA1}, Meter: &cm}
	scfg := &Config{Credential: pki.server, Roots: pki.ca.Pool(), Suites: []Suite{SuiteAES256SHA1}, Meter: &sm}
	cc, sc := handshakePair(t, pki, ccfg, scfg)
	payload := make([]byte, 256*1024)
	go cc.Write(payload)
	if _, err := io.ReadFull(sc, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	if cm.Busy() == 0 {
		t.Fatal("client meter recorded no seal time")
	}
	if sm.Busy() == 0 {
		t.Fatal("server meter recorded no open time")
	}
}
