package securechan

import (
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestServerHandshakeRobustAgainstGarbage confirms a hostile peer
// sending random bytes cannot crash or wedge the accepting side.
func TestServerHandshakeRobustAgainstGarbage(t *testing.T) {
	pki := newPKI(t)
	cfg := &Config{Credential: pki.server, Roots: pki.ca.Pool(), HandshakeTimeout: 300 * time.Millisecond}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 8; i++ {
		a, b := net.Pipe()
		// Draw the junk before spawning: a lingering goroutine from a
		// previous iteration must not share the rng.
		junk := make([]byte, rng.Intn(256)+1)
		rng.Read(junk)
		go func() {
			a.Write(junk)
			a.Close()
		}()
		done := make(chan error, 1)
		go func() {
			_, err := Server(b, cfg)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("garbage handshake succeeded")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("handshake hung on garbage")
		}
	}
}

// TestClientHandshakeRobustAgainstGarbage does the same for the
// initiating side (a hostile or broken server).
func TestClientHandshakeRobustAgainstGarbage(t *testing.T) {
	pki := newPKI(t)
	cfg := &Config{Credential: pki.client, Roots: pki.ca.Pool(), HandshakeTimeout: 300 * time.Millisecond}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 8; i++ {
		a, b := net.Pipe()
		junk := make([]byte, rng.Intn(256)+1)
		rng.Read(junk)
		go func() {
			// Swallow the client hello then answer with noise.
			buf := make([]byte, 4096)
			b.Read(buf)
			b.Write(junk)
			b.Close()
		}()
		done := make(chan error, 1)
		go func() {
			_, err := Client(a, cfg)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("client accepted a garbage handshake")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("client hung on garbage server")
		}
	}
}

// TestCryptoMeterAccounts verifies the Figures 5/6 hook: a metered
// channel accumulates seal/open time on both endpoints.
func TestCryptoMeterAccounts(t *testing.T) {
	pki := newPKI(t)
	var cm, sm metrics.Meter
	ccfg := &Config{Credential: pki.client, Roots: pki.ca.Pool(), Suites: []Suite{SuiteAES256SHA1}, Meter: &cm}
	scfg := &Config{Credential: pki.server, Roots: pki.ca.Pool(), Suites: []Suite{SuiteAES256SHA1}, Meter: &sm}
	cc, sc := handshakePair(t, pki, ccfg, scfg)
	payload := make([]byte, 256*1024)
	go cc.Write(payload)
	if _, err := io.ReadFull(sc, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	if cm.Busy() == 0 {
		t.Fatal("client meter recorded no seal time")
	}
	if sm.Busy() == 0 {
		t.Fatal("server meter recorded no open time")
	}
}
