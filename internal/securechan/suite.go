// Package securechan implements the SSL-like secure channel that
// protects SGFS RPC traffic: mutual X.509/GSI authentication, ECDHE
// key exchange, and an encrypt-then-MAC record layer with selectable
// cipher suites.
//
// The paper builds its secure RPC library on OpenSSL's TLS; this
// package plays the same role with a from-scratch record protocol so
// that all three of the paper's security configurations are available,
// including the integrity-only suite (sgfs-sha) that standard TLS
// stacks do not expose:
//
//	SuiteAES256SHA1 — AES-256-CBC encryption + HMAC-SHA1 (sgfs-aes)
//	SuiteRC4SHA1    — RC4-128 encryption + HMAC-SHA1     (sgfs-rc)
//	SuiteNullSHA1   — no encryption + HMAC-SHA1          (sgfs-sha)
//
// Sessions may be rekeyed at any time (and automatically on a timer),
// reproducing the paper's periodic SSL renegotiation for long-lived
// sessions (§4.2): record keys are ratcheted from the master secret,
// so a compromised record key does not expose future traffic.
package securechan

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rc4"
	"crypto/sha1"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
)

// Suite identifies a negotiated protection suite.
type Suite uint16

// The cipher suites of the paper's three SGFS configurations.
const (
	SuiteNullSHA1   Suite = 0x0001 // integrity only: HMAC-SHA1
	SuiteRC4SHA1    Suite = 0x0002 // RC4-128 + HMAC-SHA1
	SuiteAES256SHA1 Suite = 0x0003 // AES-256-CBC + HMAC-SHA1
)

// String returns the configuration name used in the paper.
func (s Suite) String() string {
	switch s {
	case SuiteNullSHA1:
		return "null-sha1"
	case SuiteRC4SHA1:
		return "rc4128-sha1"
	case SuiteAES256SHA1:
		return "aes256cbc-sha1"
	default:
		return fmt.Sprintf("suite(%d)", uint16(s))
	}
}

// ParseSuite maps a configuration-file name to a Suite.
func ParseSuite(name string) (Suite, error) {
	switch name {
	case "null-sha1", "sha", "integrity":
		return SuiteNullSHA1, nil
	case "rc4128-sha1", "rc4", "rc":
		return SuiteRC4SHA1, nil
	case "aes256cbc-sha1", "aes", "aes256":
		return SuiteAES256SHA1, nil
	}
	return 0, fmt.Errorf("securechan: unknown cipher suite %q", name)
}

func (s Suite) keyLen() int {
	switch s {
	case SuiteRC4SHA1:
		return 16
	case SuiteAES256SHA1:
		return 32
	default:
		return 0
	}
}

const macLen = sha1.Size // 20

// ErrRecordMAC reports a record whose HMAC failed verification.
var ErrRecordMAC = errors.New("securechan: record MAC verification failed")

// sealer protects one direction of the channel under one generation of
// keys. It is not safe for concurrent use; Conn serializes access.
type sealer struct {
	suite  Suite
	macKey []byte
	encKey []byte
	stream *rc4.Cipher  // RC4 only
	block  cipher.Block // AES only
	seq    uint64

	// h, sum, and hdr are reused across records so the per-record MAC
	// costs no allocations (a local hdr array would be moved to the heap
	// on every mac call because it is written through the hash.Hash
	// interface); access is serialized with the rest of the sealer.
	h   hash.Hash
	sum [macLen]byte
	hdr [13]byte
}

func newSealer(suite Suite, encKey, macKey []byte) (*sealer, error) {
	s := &sealer{suite: suite, macKey: macKey, encKey: encKey}
	s.h = hmac.New(sha1.New, macKey)
	switch suite {
	case SuiteNullSHA1:
	case SuiteRC4SHA1:
		c, err := rc4.NewCipher(encKey)
		if err != nil {
			return nil, err
		}
		s.stream = c
	case SuiteAES256SHA1:
		b, err := aes.NewCipher(encKey)
		if err != nil {
			return nil, err
		}
		s.block = b
	default:
		return nil, fmt.Errorf("securechan: unsupported suite %v", suite)
	}
	return s, nil
}

// mac computes HMAC-SHA1 over seq || recType || len(body) || body. The
// returned slice aliases the sealer's scratch sum and is valid until
// the next mac call.
func (s *sealer) mac(recType byte, body []byte) []byte {
	s.h.Reset()
	binary.BigEndian.PutUint64(s.hdr[0:8], s.seq)
	s.hdr[8] = recType
	binary.BigEndian.PutUint32(s.hdr[9:13], uint32(len(body)))
	s.h.Write(s.hdr[:])
	s.h.Write(body)
	return s.h.Sum(s.sum[:0])
}

// sliceFor returns a length-n slice backed by dst's storage when its
// capacity can also hold a trailing tag of tail bytes; otherwise it
// allocates with that headroom so the caller's append cannot reallocate.
func sliceFor(dst []byte, n, tail int) []byte {
	if cap(dst) >= n+tail {
		return dst[:n]
	}
	return make([]byte, n, n+tail)
}

// seal encrypts and authenticates plaintext, returning the protected
// record body (ciphertext || MAC) and advancing the sequence number.
func (s *sealer) seal(recType byte, plaintext []byte) ([]byte, error) {
	return s.sealTo(nil, recType, plaintext)
}

// sealTo is seal writing into dst's storage when it is large enough,
// so a steady-state connection seals records with zero allocations.
// dst must be empty (a scratch buffer sliced to [:0]); the returned
// record aliases it when it fits.
func (s *sealer) sealTo(dst []byte, recType byte, plaintext []byte) ([]byte, error) {
	var body []byte
	switch s.suite {
	case SuiteNullSHA1:
		body = sliceFor(dst, len(plaintext), macLen)
		copy(body, plaintext)
	case SuiteRC4SHA1:
		body = sliceFor(dst, len(plaintext), macLen)
		s.stream.XORKeyStream(body, plaintext)
	case SuiteAES256SHA1:
		bs := s.block.BlockSize()
		padLen := bs - len(plaintext)%bs
		body = sliceFor(dst, bs+len(plaintext)+padLen, macLen)
		iv, ct := body[:bs], body[bs:]
		copy(ct, plaintext)
		for i := len(plaintext); i < len(ct); i++ {
			ct[i] = byte(padLen)
		}
		if _, err := rand.Read(iv); err != nil {
			return nil, err
		}
		// Exact-overlap src/dst is permitted by cipher.BlockMode.
		cipher.NewCBCEncrypter(s.block, iv).CryptBlocks(ct, ct)
	}
	tag := s.mac(recType, body)
	s.seq++
	return append(body, tag...), nil
}

// open verifies and decrypts a protected record body. Decryption is
// done in place: record's ciphertext bytes are overwritten and the
// returned plaintext aliases them. Callers (the Conn read path) own
// the record buffer and do not reuse it until the plaintext is
// consumed.
func (s *sealer) open(recType byte, record []byte) ([]byte, error) {
	if len(record) < macLen {
		return nil, ErrRecordMAC
	}
	body, tag := record[:len(record)-macLen], record[len(record)-macLen:]
	want := s.mac(recType, body)
	if subtle.ConstantTimeCompare(tag, want) != 1 {
		return nil, ErrRecordMAC
	}
	s.seq++
	switch s.suite {
	case SuiteNullSHA1:
		return body, nil
	case SuiteRC4SHA1:
		s.stream.XORKeyStream(body, body)
		return body, nil
	case SuiteAES256SHA1:
		bs := s.block.BlockSize()
		if len(body) < 2*bs || len(body)%bs != 0 {
			return nil, errors.New("securechan: malformed CBC record")
		}
		iv, ct := body[:bs], body[bs:]
		cipher.NewCBCDecrypter(s.block, iv).CryptBlocks(ct, ct)
		padLen := int(ct[len(ct)-1])
		if padLen == 0 || padLen > bs || padLen > len(ct) {
			return nil, errors.New("securechan: bad CBC padding")
		}
		for _, b := range ct[len(ct)-padLen:] {
			if int(b) != padLen {
				return nil, errors.New("securechan: bad CBC padding")
			}
		}
		return ct[:len(ct)-padLen], nil
	}
	return nil, fmt.Errorf("securechan: unsupported suite %v", s.suite)
}
