// Package nfs4 implements a simplified NFS version 4 protocol as the
// paper's nfs-v4 baseline (§6.1). The defining structural feature of
// v4 is preserved — COMPOUND procedures that evaluate a sequence of
// operations against a current/saved filehandle pair in one round
// trip — while the parts the paper's workloads never exercise are
// omitted: delegation (the paper notes it "is not yet widely
// supported"), byte-range locking, and the full bitmap attribute
// encoding (a fixed attribute structure is returned instead).
//
// The paper reports that nfs-v4 showed no performance advantage over
// nfs-v3 for its workloads; this implementation lets the benchmarks
// re-test that observation.
package nfs4

import (
	"repro/internal/nfs3"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// Program and version registered with ONC RPC. NFSv4 shares the NFS
// program number with version 4.
const (
	Program = 100003
	Version = 4
)

// ProcCompound is the only non-NULL procedure in NFSv4.
const ProcCompound = 1

// Status mirrors nfsstat (shared numbering with v3/vfs).
type Status = nfs3.Status

// Operation codes (values follow RFC 3530 where the operation exists
// there).
const (
	OpAccess    = 3
	OpClose     = 4
	OpCommit    = 5
	OpCreate    = 6 // non-regular files (directories, symlinks)
	OpGetAttr   = 9
	OpGetFH     = 10
	OpLink      = 11
	OpLookup    = 15
	OpLookupP   = 16
	OpOpen      = 18 // regular files, with optional create
	OpPutFH     = 22
	OpPutRootFH = 24
	OpRead      = 25
	OpReadDir   = 26
	OpReadLink  = 27
	OpRemove    = 28
	OpRename    = 29
	OpRestoreFH = 31
	OpSaveFH    = 32
	OpSetAttr   = 34
	OpWrite     = 38
)

// Op is one operation in a COMPOUND request.
type Op struct {
	Code uint32

	// Operand fields; which are meaningful depends on Code.
	FH     nfs3.FH3 // PUTFH
	Name   string   // LOOKUP, CREATE, OPEN, REMOVE, RENAME (old), LINK
	Name2  string   // RENAME (new)
	Offset uint64   // READ, WRITE, COMMIT
	Count  uint32   // READ, READDIR
	Data   []byte   // WRITE
	Stable uint32   // WRITE
	Attr   nfs3.Sattr3
	Create bool   // OPEN: create if absent
	Excl   bool   // OPEN: exclusive create
	Dir    bool   // CREATE: directory
	Target string // CREATE: symlink target
	Access uint32 // ACCESS mask
	Cookie uint64 // READDIR
}

// EncodeXDR implements xdr.Marshaler.
func (o *Op) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(o.Code)
	switch o.Code {
	case OpPutFH:
		o.FH.EncodeXDR(e)
	case OpLookup, OpRemove:
		e.String(o.Name)
	case OpOpen:
		e.String(o.Name)
		e.Bool(o.Create)
		e.Bool(o.Excl)
		o.Attr.EncodeXDR(e)
	case OpCreate:
		e.String(o.Name)
		e.Bool(o.Dir)
		e.String(o.Target)
		o.Attr.EncodeXDR(e)
	case OpRead:
		e.Uint64(o.Offset)
		e.Uint32(o.Count)
	case OpWrite:
		e.Uint64(o.Offset)
		e.Uint32(o.Stable)
		e.Opaque(o.Data)
	case OpSetAttr:
		o.Attr.EncodeXDR(e)
	case OpRename:
		e.String(o.Name)
		e.String(o.Name2)
	case OpLink:
		e.String(o.Name)
	case OpAccess:
		e.Uint32(o.Access)
	case OpReadDir:
		e.Uint64(o.Cookie)
		e.Uint32(o.Count)
	case OpCommit:
		e.Uint64(o.Offset)
		e.Uint32(o.Count)
	case OpPutRootFH, OpGetFH, OpGetAttr, OpSaveFH, OpRestoreFH, OpReadLink, OpLookupP, OpClose:
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (o *Op) DecodeXDR(d *xdr.Decoder) {
	o.Code = d.Uint32()
	switch o.Code {
	case OpPutFH:
		o.FH.DecodeXDR(d)
	case OpLookup, OpRemove:
		o.Name = d.String()
	case OpOpen:
		o.Name = d.String()
		o.Create = d.Bool()
		o.Excl = d.Bool()
		o.Attr.DecodeXDR(d)
	case OpCreate:
		o.Name = d.String()
		o.Dir = d.Bool()
		o.Target = d.String()
		o.Attr.DecodeXDR(d)
	case OpRead:
		o.Offset = d.Uint64()
		o.Count = d.Uint32()
	case OpWrite:
		o.Offset = d.Uint64()
		o.Stable = d.Uint32()
		o.Data = d.Opaque()
	case OpSetAttr:
		o.Attr.DecodeXDR(d)
	case OpRename:
		o.Name = d.String()
		o.Name2 = d.String()
	case OpLink:
		o.Name = d.String()
	case OpAccess:
		o.Access = d.Uint32()
	case OpReadDir:
		o.Cookie = d.Uint64()
		o.Count = d.Uint32()
	case OpCommit:
		o.Offset = d.Uint64()
		o.Count = d.Uint32()
	}
}

// OpResult is the result of one operation.
type OpResult struct {
	Code   uint32
	Status Status

	FH      nfs3.FH3    // GETFH
	Attr    nfs3.Fattr3 // GETATTR, and attached to OPEN/LOOKUP results
	HasAttr bool
	Data    []byte // READ
	EOF     bool   // READ, READDIR
	Count   uint32 // WRITE
	Access  uint32 // ACCESS
	Target  string // READLINK
	Entries []nfs3.DirEntryPlus
}

// EncodeXDR implements xdr.Marshaler.
func (r *OpResult) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(r.Code)
	e.Uint32(uint32(r.Status))
	if r.Status != nfs3.OK {
		return
	}
	switch r.Code {
	case OpGetFH:
		r.FH.EncodeXDR(e)
	case OpGetAttr, OpLookup, OpOpen, OpCreate, OpSetAttr:
		e.Bool(r.HasAttr)
		if r.HasAttr {
			r.Attr.EncodeXDR(e)
		}
	case OpRead:
		e.Bool(r.EOF)
		e.Opaque(r.Data)
	case OpWrite:
		e.Uint32(r.Count)
	case OpAccess:
		e.Uint32(r.Access)
	case OpReadLink:
		e.String(r.Target)
	case OpReadDir:
		e.Bool(r.EOF)
		e.Uint32(uint32(len(r.Entries)))
		for i := range r.Entries {
			ent := &r.Entries[i]
			e.Uint64(ent.FileID)
			e.String(ent.Name)
			e.Uint64(ent.Cookie)
			ent.Attr.EncodeXDR(e)
			ent.FH.EncodeXDR(e)
		}
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *OpResult) DecodeXDR(d *xdr.Decoder) {
	r.Code = d.Uint32()
	r.Status = Status(d.Uint32())
	if r.Status != nfs3.OK {
		return
	}
	switch r.Code {
	case OpGetFH:
		r.FH.DecodeXDR(d)
	case OpGetAttr, OpLookup, OpOpen, OpCreate, OpSetAttr:
		r.HasAttr = d.Bool()
		if r.HasAttr {
			r.Attr.DecodeXDR(d)
		}
	case OpRead:
		r.EOF = d.Bool()
		r.Data = d.Opaque()
	case OpWrite:
		r.Count = d.Uint32()
	case OpAccess:
		r.Access = d.Uint32()
	case OpReadLink:
		r.Target = d.String()
	case OpReadDir:
		r.EOF = d.Bool()
		n := d.Uint32()
		if n > 100000 {
			d.SetErr(vfs.ErrInval)
			return
		}
		r.Entries = make([]nfs3.DirEntryPlus, n)
		for i := range r.Entries {
			ent := &r.Entries[i]
			ent.FileID = d.Uint64()
			ent.Name = d.String()
			ent.Cookie = d.Uint64()
			ent.Attr.DecodeXDR(d)
			ent.FH.DecodeXDR(d)
		}
	}
}

// CompoundArgs is a COMPOUND request.
type CompoundArgs struct {
	Tag string
	Ops []Op
}

// EncodeXDR implements xdr.Marshaler.
func (a *CompoundArgs) EncodeXDR(e *xdr.Encoder) {
	e.String(a.Tag)
	e.Uint32(uint32(len(a.Ops)))
	for i := range a.Ops {
		a.Ops[i].EncodeXDR(e)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (a *CompoundArgs) DecodeXDR(d *xdr.Decoder) {
	a.Tag = d.String()
	n := d.Uint32()
	if n > 1024 {
		d.SetErr(vfs.ErrInval)
		return
	}
	a.Ops = make([]Op, n)
	for i := range a.Ops {
		a.Ops[i].DecodeXDR(d)
		if d.Err() != nil {
			return
		}
	}
}

// CompoundRes is a COMPOUND reply: results for each executed
// operation, stopping at the first failure.
type CompoundRes struct {
	Status  Status
	Tag     string
	Results []OpResult
}

// EncodeXDR implements xdr.Marshaler.
func (r *CompoundRes) EncodeXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	e.String(r.Tag)
	e.Uint32(uint32(len(r.Results)))
	for i := range r.Results {
		r.Results[i].EncodeXDR(e)
	}
}

// DecodeXDR implements xdr.Unmarshaler.
func (r *CompoundRes) DecodeXDR(d *xdr.Decoder) {
	r.Status = Status(d.Uint32())
	r.Tag = d.String()
	n := d.Uint32()
	if n > 1024 {
		d.SetErr(vfs.ErrInval)
		return
	}
	r.Results = make([]OpResult, n)
	for i := range r.Results {
		r.Results[i].DecodeXDR(d)
		if d.Err() != nil {
			return
		}
	}
}
