package nfs4

import (
	"container/list"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/nfs3"
	"repro/internal/oncrpc"
	"repro/internal/vfs"
)

// Options tunes the v4 client's caching, mirroring the v3 client's
// defaults so baseline comparisons are apples-to-apples.
type Options struct {
	BlockSize   int           // default 32 KiB
	CacheBytes  int64         // default 32 MiB
	AttrTimeout time.Duration // default 3 s
	UID, GID    uint32
}

func (o Options) withDefaults() Options {
	if o.BlockSize == 0 {
		o.BlockSize = 32 * 1024
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 32 << 20
	}
	if o.AttrTimeout == 0 {
		o.AttrTimeout = 3 * time.Second
	}
	return o
}

// Client is a caching NFSv4 client. Unlike v3 it needs no separate
// MOUNT protocol: PUTROOTFH anchors every path traversal, and a whole
// path walk ships as a single COMPOUND round trip.
type Client struct {
	rpc *oncrpc.Client
	opt Options

	mu     sync.Mutex
	attrs  map[string]attrEntry // path -> attrs
	blocks map[blockKey][]byte
	lru    *list.List
	lruIdx map[blockKey]*list.Element
	used   int64
}

type attrEntry struct {
	attr   nfs3.Fattr3
	expiry time.Time
}

type blockKey struct {
	path string
	idx  uint64
}

// Dial connects and returns a v4 client.
func Dial(dial func() (net.Conn, error), opt Options) (*Client, error) {
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	c := &Client{
		rpc:    oncrpc.NewClient(conn, Program, Version),
		opt:    opt,
		attrs:  make(map[string]attrEntry),
		blocks: make(map[blockKey][]byte),
		lru:    list.New(),
		lruIdx: make(map[blockKey]*list.Element),
	}
	cred, err := (&oncrpc.AuthSys{MachineName: "v4client", UID: opt.UID, GID: opt.GID}).Auth()
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.rpc.SetCred(cred)
	// Probe the server.
	if _, err := c.compound(context.Background(), Op{Code: OpPutRootFH}, Op{Code: OpGetAttr}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("nfs4: initial compound: %w", err)
	}
	return c, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }

// compound executes ops and returns the results, converting a failed
// compound into an error carrying the failing status.
func (c *Client) compound(ctx context.Context, ops ...Op) ([]OpResult, error) {
	args := &CompoundArgs{Ops: ops}
	var res CompoundRes
	if err := c.rpc.Call(ctx, ProcCompound, args, &res); err != nil {
		return nil, err
	}
	if res.Status != nfs3.OK {
		return res.Results, res.Status.Error()
	}
	return res.Results, nil
}

// pathOps builds the op prefix that walks to path's final component.
func pathOps(path string) []Op {
	ops := []Op{{Code: OpPutRootFH}}
	for _, part := range splitPath(path) {
		ops = append(ops, Op{Code: OpLookup, Name: part})
	}
	return ops
}

// parentOps walks to path's parent and returns the leaf name.
func parentOps(path string) ([]Op, string, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, "", vfs.ErrInval
	}
	ops := []Op{{Code: OpPutRootFH}}
	for _, part := range parts[:len(parts)-1] {
		ops = append(ops, Op{Code: OpLookup, Name: part})
	}
	return ops, parts[len(parts)-1], nil
}

func splitPath(path string) []string {
	var parts []string
	for _, p := range strings.Split(path, "/") {
		if p != "" && p != "." {
			parts = append(parts, p)
		}
	}
	return parts
}

// Stat returns attributes for path, cached per AttrTimeout.
func (c *Client) Stat(ctx context.Context, path string) (nfs3.Fattr3, error) {
	c.mu.Lock()
	if e, ok := c.attrs[path]; ok && time.Now().Before(e.expiry) {
		c.mu.Unlock()
		return e.attr, nil
	}
	c.mu.Unlock()
	ops := append(pathOps(path), Op{Code: OpGetAttr})
	results, err := c.compound(ctx, ops...)
	if err != nil {
		return nfs3.Fattr3{}, err
	}
	attr := results[len(results)-1].Attr
	c.putAttr(path, attr)
	return attr, nil
}

func (c *Client) putAttr(path string, attr nfs3.Fattr3) {
	c.mu.Lock()
	c.attrs[path] = attrEntry{attr: attr, expiry: time.Now().Add(c.opt.AttrTimeout)}
	c.mu.Unlock()
}

func (c *Client) dropAttr(path string) {
	c.mu.Lock()
	delete(c.attrs, path)
	c.mu.Unlock()
}

// Mkdir creates a directory.
func (c *Client) Mkdir(ctx context.Context, path string, mode uint32) error {
	ops, name, err := parentOps(path)
	if err != nil {
		return err
	}
	ops = append(ops, Op{Code: OpCreate, Name: name, Dir: true, Attr: nfs3.Sattr3{SetMode: true, Mode: mode}})
	_, err = c.compound(ctx, ops...)
	return err
}

// Remove unlinks a file or empty directory.
func (c *Client) Remove(ctx context.Context, path string) error {
	ops, name, err := parentOps(path)
	if err != nil {
		return err
	}
	ops = append(ops, Op{Code: OpRemove, Name: name})
	c.dropAttr(path)
	c.dropBlocks(path)
	_, err = c.compound(ctx, ops...)
	return err
}

// Rename moves oldPath to newPath.
func (c *Client) Rename(ctx context.Context, oldPath, newPath string) error {
	srcOps, oldName, err := parentOps(oldPath)
	if err != nil {
		return err
	}
	dstOps, newName, err := parentOps(newPath)
	if err != nil {
		return err
	}
	ops := append(srcOps, Op{Code: OpSaveFH})
	ops = append(ops, dstOps...)
	ops = append(ops, Op{Code: OpRename, Name: oldName, Name2: newName})
	c.dropAttr(oldPath)
	c.dropAttr(newPath)
	c.dropBlocks(oldPath)
	_, err = c.compound(ctx, ops...)
	return err
}

// ReadDir lists a directory.
func (c *Client) ReadDir(ctx context.Context, path string) ([]nfs3.DirEntryPlus, error) {
	var out []nfs3.DirEntryPlus
	var cookie uint64
	for {
		ops := append(pathOps(path), Op{Code: OpReadDir, Cookie: cookie, Count: 256})
		results, err := c.compound(ctx, ops...)
		if err != nil {
			return nil, err
		}
		last := results[len(results)-1]
		out = append(out, last.Entries...)
		for _, e := range last.Entries {
			cookie = e.Cookie
		}
		if last.EOF || len(last.Entries) == 0 {
			return out, nil
		}
	}
}

// File is an open v4 file.
type File struct {
	c    *Client
	path string
	fh   nfs3.FH3

	mu    sync.Mutex
	size  int64
	dirty map[uint64][]byte // write-behind blocks
	dbyte int64
}

// OpenFile opens (optionally creating/truncating) path. A single
// COMPOUND performs the walk, open, and attribute fetch — v4's
// latency advantage over v3's per-component LOOKUPs.
func (c *Client) OpenFile(ctx context.Context, path string, create, trunc, excl bool) (*File, error) {
	ops, name, err := parentOps(path)
	if err != nil {
		return nil, err
	}
	open := Op{Code: OpOpen, Name: name, Create: create, Excl: excl}
	if trunc {
		open.Attr = nfs3.Sattr3{SetSize: true, Size: 0}
	}
	if create {
		open.Attr.SetMode = true
		open.Attr.Mode = 0644
	}
	ops = append(ops, open, Op{Code: OpGetFH})
	results, err := c.compound(ctx, ops...)
	if err != nil {
		return nil, err
	}
	openRes := results[len(results)-2]
	fhRes := results[len(results)-1]
	c.putAttr(path, openRes.Attr)
	if trunc {
		c.dropBlocks(path)
	}
	return &File{
		c: c, path: path, fh: fhRes.FH,
		size:  int64(openRes.Attr.Size),
		dirty: make(map[uint64][]byte),
	}, nil
}

// Size returns the locally known size.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

func (c *Client) getBlock(k blockKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.blocks[k]
	if ok {
		c.lru.MoveToFront(c.lruIdx[k])
	}
	return b, ok
}

func (c *Client) putBlock(k blockKey, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.blocks[k]; ok {
		c.used -= int64(len(old))
		c.lru.MoveToFront(c.lruIdx[k])
	} else {
		c.lruIdx[k] = c.lru.PushFront(k)
	}
	c.blocks[k] = data
	c.used += int64(len(data))
	for c.used > c.opt.CacheBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(blockKey)
		c.used -= int64(len(c.blocks[victim]))
		delete(c.blocks, victim)
		delete(c.lruIdx, victim)
		c.lru.Remove(back)
	}
}

func (c *Client) dropBlocks(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.blocks {
		if k.path == path {
			c.used -= int64(len(c.blocks[k]))
			delete(c.blocks, k)
			if e := c.lruIdx[k]; e != nil {
				c.lru.Remove(e)
			}
			delete(c.lruIdx, k)
		}
	}
}

// ReadAt reads from the file through the block cache.
func (f *File) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	bs := int64(f.c.opt.BlockSize)
	size := f.Size()
	if off >= size {
		return 0, io.EOF
	}
	if off+int64(len(p)) > size {
		p = p[:size-off]
	}
	read := 0
	for read < len(p) {
		pos := off + int64(read)
		idx := uint64(pos / bs)
		inner := pos % bs

		// Dirty write-behind data wins.
		f.mu.Lock()
		block, ok := f.dirty[idx]
		f.mu.Unlock()
		if !ok {
			block, ok = f.c.getBlock(blockKey{f.path, idx})
		}
		if !ok {
			results, err := f.c.compound(ctx,
				Op{Code: OpPutFH, FH: f.fh},
				Op{Code: OpRead, Offset: idx * uint64(bs), Count: uint32(bs)})
			if err != nil {
				return read, err
			}
			block = results[1].Data
			f.c.putBlock(blockKey{f.path, idx}, block)
		}
		n := 0
		if inner < int64(len(block)) {
			n = copy(p[read:], block[inner:])
		}
		zeroEnd := int64(idx+1) * bs
		for read+n < len(p) && pos+int64(n) < zeroEnd {
			p[read+n] = 0
			n++
		}
		read += n
	}
	var eof error
	if off+int64(read) >= size {
		eof = io.EOF
	}
	return read, eof
}

// WriteAt buffers the write (write-behind) and flushes at Close or
// under memory pressure.
func (f *File) WriteAt(ctx context.Context, p []byte, off int64) (int, error) {
	bs := int64(f.c.opt.BlockSize)
	written := 0
	for written < len(p) {
		pos := off + int64(written)
		idx := uint64(pos / bs)
		inner := pos % bs
		n := int(bs - inner)
		if n > len(p)-written {
			n = len(p) - written
		}
		f.mu.Lock()
		block := f.dirty[idx]
		f.mu.Unlock()
		if block == nil {
			if cached, ok := f.c.getBlock(blockKey{f.path, idx}); ok {
				block = append([]byte(nil), cached...)
			} else if inner != 0 || n != int(bs) {
				if int64(idx)*bs < f.Size() {
					results, err := f.c.compound(ctx,
						Op{Code: OpPutFH, FH: f.fh},
						Op{Code: OpRead, Offset: idx * uint64(bs), Count: uint32(bs)})
					if err != nil {
						return written, err
					}
					block = append([]byte(nil), results[1].Data...)
				}
			}
		}
		need := inner + int64(n)
		if int64(len(block)) < need {
			grown := make([]byte, need)
			copy(grown, block)
			block = grown
		}
		copy(block[inner:], p[written:written+n])
		f.mu.Lock()
		if f.dirty[idx] == nil {
			f.dbyte += int64(len(block))
		}
		f.dirty[idx] = block
		needFlush := f.dbyte > 8<<20
		if end := pos + int64(n); end > f.size {
			f.size = end
		}
		f.mu.Unlock()
		written += n
		if needFlush {
			if err := f.Sync(ctx); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// Sync flushes dirty blocks with UNSTABLE writes then commits.
func (f *File) Sync(ctx context.Context) error {
	f.mu.Lock()
	dirty := f.dirty
	f.dirty = make(map[uint64][]byte)
	f.dbyte = 0
	f.mu.Unlock()
	if len(dirty) == 0 {
		return nil
	}
	bs := uint64(f.c.opt.BlockSize)
	for idx, block := range dirty {
		_, err := f.c.compound(ctx,
			Op{Code: OpPutFH, FH: f.fh},
			Op{Code: OpWrite, Offset: idx * bs, Stable: nfs3.Unstable, Data: block})
		if err != nil {
			return err
		}
		f.c.putBlock(blockKey{f.path, idx}, block)
	}
	_, err := f.c.compound(ctx, Op{Code: OpPutFH, FH: f.fh}, Op{Code: OpCommit})
	return err
}

// Close flushes and releases the file (CLOSE is stateless here).
func (f *File) Close(ctx context.Context) error {
	if err := f.Sync(ctx); err != nil {
		return err
	}
	_, err := f.c.compound(ctx, Op{Code: OpPutFH, FH: f.fh}, Op{Code: OpClose})
	f.c.dropAttr(f.path)
	return err
}
