package nfs4

import (
	"context"

	"repro/internal/nfs3"
	"repro/internal/oncrpc"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// Server evaluates COMPOUND procedures against a vfs.FS backend.
type Server struct {
	fs   vfs.FS
	fsid uint64
}

// NewServer creates a v4 server exporting fs.
func NewServer(fs vfs.FS, fsid uint64) *Server { return &Server{fs: fs, fsid: fsid} }

// Register installs the NFSv4 program on an RPC server.
func (s *Server) Register(r *oncrpc.Server) {
	r.Register(Program, Version, map[uint32]oncrpc.Handler{
		ProcCompound: s.compound,
	})
}

func (s *Server) compound(_ context.Context, call *oncrpc.Call) (xdr.Marshaler, oncrpc.AcceptStat) {
	var args CompoundArgs
	if call.DecodeArgs(&args) != nil {
		return nil, oncrpc.GarbageArgs
	}
	creds := vfs.Creds{UID: ^uint32(0)}
	if call.Cred.Sys != nil {
		creds = vfs.Creds{UID: call.Cred.Sys.UID, GID: call.Cred.Sys.GID, GIDs: call.Cred.Sys.GIDs}
	}

	res := &CompoundRes{Tag: args.Tag}
	var cur, saved vfs.Handle
	haveCur := false
	for i := range args.Ops {
		op := &args.Ops[i]
		r := s.eval(op, &cur, &saved, &haveCur, creds)
		res.Results = append(res.Results, r)
		if r.Status != nfs3.OK {
			res.Status = r.Status
			break
		}
	}
	return res, oncrpc.Success
}

func (s *Server) attr(h vfs.Handle) (nfs3.Fattr3, Status) {
	a, err := s.fs.GetAttr(h)
	if err != nil {
		return nfs3.Fattr3{}, nfs3.StatusFromError(err)
	}
	return nfs3.FromAttr(a, s.fsid), nfs3.OK
}

// eval executes one operation against the compound's filehandle state.
func (s *Server) eval(op *Op, cur, saved *vfs.Handle, haveCur *bool, creds vfs.Creds) OpResult {
	r := OpResult{Code: op.Code}
	needCur := func() bool {
		if !*haveCur {
			r.Status = Status(vfs.ErrBadHandle)
			return false
		}
		return true
	}
	switch op.Code {
	case OpPutRootFH:
		*cur = s.fs.Root()
		*haveCur = true
	case OpPutFH:
		*cur = op.FH.Handle()
		*haveCur = true
	case OpGetFH:
		if !needCur() {
			return r
		}
		r.FH = nfs3.FromHandle(*cur)
	case OpSaveFH:
		if !needCur() {
			return r
		}
		*saved = *cur
	case OpRestoreFH:
		*cur = *saved
	case OpLookup:
		if !needCur() {
			return r
		}
		h, attr, err := s.fs.Lookup(*cur, op.Name)
		if err != nil {
			r.Status = nfs3.StatusFromError(err)
			return r
		}
		*cur = h
		r.Attr = nfs3.FromAttr(attr, s.fsid)
		r.HasAttr = true
	case OpGetAttr:
		if !needCur() {
			return r
		}
		r.Attr, r.Status = s.attr(*cur)
		r.HasAttr = r.Status == nfs3.OK
	case OpSetAttr:
		if !needCur() {
			return r
		}
		attr, err := s.fs.SetAttr(*cur, op.Attr.SetAttr())
		if err != nil {
			r.Status = nfs3.StatusFromError(err)
			return r
		}
		r.Attr = nfs3.FromAttr(attr, s.fsid)
		r.HasAttr = true
	case OpAccess:
		if !needCur() {
			return r
		}
		a, err := s.fs.GetAttr(*cur)
		if err != nil {
			r.Status = nfs3.StatusFromError(err)
			return r
		}
		r.Access = vfs.CheckAccess(a, creds, op.Access)
	case OpOpen:
		if !needCur() {
			return r
		}
		h, attr, err := s.fs.Lookup(*cur, op.Name)
		switch {
		case err == nil:
			if op.Excl {
				r.Status = Status(vfs.ErrExist)
				return r
			}
			if op.Attr.SetSize && op.Attr.Size == 0 {
				if _, err := s.fs.SetAttr(h, op.Attr.SetAttr()); err != nil {
					r.Status = nfs3.StatusFromError(err)
					return r
				}
				attr.Size = 0
			}
		case err == vfs.ErrNoEnt && op.Create:
			sa := op.Attr.SetAttr()
			if sa.UID == nil {
				sa.UID = &creds.UID
			}
			if sa.GID == nil {
				sa.GID = &creds.GID
			}
			h, attr, err = s.fs.Create(*cur, op.Name, sa, op.Excl)
			if err != nil {
				r.Status = nfs3.StatusFromError(err)
				return r
			}
		default:
			r.Status = nfs3.StatusFromError(err)
			return r
		}
		*cur = h
		r.Attr = nfs3.FromAttr(attr, s.fsid)
		r.HasAttr = true
	case OpCreate:
		if !needCur() {
			return r
		}
		sa := op.Attr.SetAttr()
		if sa.UID == nil {
			sa.UID = &creds.UID
		}
		if sa.GID == nil {
			sa.GID = &creds.GID
		}
		var h vfs.Handle
		var attr vfs.Attr
		var err error
		if op.Dir {
			h, attr, err = s.fs.Mkdir(*cur, op.Name, sa)
		} else {
			h, attr, err = s.fs.Symlink(*cur, op.Name, op.Target, sa)
		}
		if err != nil {
			r.Status = nfs3.StatusFromError(err)
			return r
		}
		*cur = h
		r.Attr = nfs3.FromAttr(attr, s.fsid)
		r.HasAttr = true
	case OpClose:
		// Stateless simplification: nothing to release.
	case OpRead:
		if !needCur() {
			return r
		}
		count := op.Count
		if count > nfs3.PreferredIO {
			count = nfs3.PreferredIO
		}
		buf := make([]byte, count)
		n, eof, err := s.fs.Read(*cur, op.Offset, buf)
		if err != nil {
			r.Status = nfs3.StatusFromError(err)
			return r
		}
		r.Data = buf[:n]
		r.EOF = eof
	case OpWrite:
		if !needCur() {
			return r
		}
		if err := s.fs.Write(*cur, op.Offset, op.Data); err != nil {
			r.Status = nfs3.StatusFromError(err)
			return r
		}
		r.Count = uint32(len(op.Data))
	case OpCommit:
		if !needCur() {
			return r
		}
		if err := s.fs.Commit(*cur); err != nil {
			r.Status = nfs3.StatusFromError(err)
		}
	case OpRemove:
		if !needCur() {
			return r
		}
		err := s.fs.Remove(*cur, op.Name)
		if err == vfs.ErrIsDir {
			err = s.fs.Rmdir(*cur, op.Name)
		}
		if err != nil {
			r.Status = nfs3.StatusFromError(err)
		}
	case OpRename:
		// RENAME: saved FH is the source directory, current FH the
		// destination directory (RFC 3530 §14.2.26).
		if !needCur() {
			return r
		}
		if err := s.fs.Rename(*saved, op.Name, *cur, op.Name2); err != nil {
			r.Status = nfs3.StatusFromError(err)
		}
	case OpLink:
		if !needCur() {
			return r
		}
		if err := s.fs.Link(*saved, *cur, op.Name); err != nil {
			r.Status = nfs3.StatusFromError(err)
		}
	case OpReadLink:
		if !needCur() {
			return r
		}
		target, err := s.fs.ReadLink(*cur)
		if err != nil {
			r.Status = nfs3.StatusFromError(err)
			return r
		}
		r.Target = target
	case OpReadDir:
		if !needCur() {
			return r
		}
		max := int(op.Count)
		if max <= 0 || max > 1024 {
			max = 256
		}
		entries, eof, err := s.fs.ReadDir(*cur, op.Cookie, max)
		if err != nil {
			r.Status = nfs3.StatusFromError(err)
			return r
		}
		r.EOF = eof
		for _, ent := range entries {
			dep := nfs3.DirEntryPlus{FileID: ent.FileID, Name: ent.Name, Cookie: ent.Cookie}
			if ent.Attr != nil {
				dep.Attr = nfs3.PostOpAttr{Present: true, Attr: nfs3.FromAttr(*ent.Attr, s.fsid)}
				dep.FH = nfs3.PostOpFH3{Present: true, FH: nfs3.FromHandle(ent.Handle)}
			}
			r.Entries = append(r.Entries, dep)
		}
	default:
		r.Status = Status(vfs.ErrNotSupp)
	}
	return r
}
