package nfs4_test

// Fuzz coverage for the NFSv4 COMPOUND wire messages. COMPOUND is the
// highest-risk decode surface in the module: one request embeds a
// variable-length sequence of per-op unions, so a malformed length or
// op code must fail cleanly (bounded allocation, no panic) and any
// accepted bytes must re-encode to a stable canonical form
// (encode → decode → encode is a fixed point), matching what the
// xdr-symmetry analyzer in cmd/sgfs-vet checks statically.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/nfs3"
	"repro/internal/nfs4"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// codec bundles both directions of one fuzzed message type.
type codec interface {
	xdr.Marshaler
	xdr.Unmarshaler
}

// nfs4Messages returns fresh zero values of the fuzzed NFSv4 types.
// Index order is part of the corpus encoding — append only.
func nfs4Messages() []codec {
	return []codec{
		&nfs4.CompoundArgs{},
		&nfs4.CompoundRes{},
		&nfs4.Op{},
		&nfs4.OpResult{},
	}
}

func FuzzNFS4CompoundRoundTrip(f *testing.F) {
	// Seed corpus: canonical encodings of representative COMPOUNDs
	// covering every operand shape, plus degenerate inputs.
	seed := []codec{
		// The canonical paper-style lookup+read chain.
		&nfs4.CompoundArgs{Tag: "open-read", Ops: []nfs4.Op{
			{Code: nfs4.OpPutRootFH},
			{Code: nfs4.OpLookup, Name: "data"},
			{Code: nfs4.OpOpen, Name: "payload.dat", Create: true, Excl: false},
			{Code: nfs4.OpRead, Offset: 65536, Count: 32768},
			{Code: nfs4.OpGetAttr},
		}},
		// Namespace mutation ops.
		&nfs4.CompoundArgs{Tag: "rename", Ops: []nfs4.Op{
			{Code: nfs4.OpPutFH, FH: nfs3.FH3{Data: []byte{1, 2, 3, 4}}},
			{Code: nfs4.OpSaveFH},
			{Code: nfs4.OpRename, Name: "old", Name2: "new"},
			{Code: nfs4.OpCreate, Name: "lnk", Dir: false, Target: "../t"},
			{Code: nfs4.OpLink, Name: "hard"},
			{Code: nfs4.OpRestoreFH},
		}},
		// Write/commit/readdir operands.
		&nfs4.CompoundArgs{Tag: "wr", Ops: []nfs4.Op{
			{Code: nfs4.OpWrite, Offset: 8192, Stable: 2, Data: []byte("abc")},
			{Code: nfs4.OpCommit, Offset: 0, Count: 8192},
			{Code: nfs4.OpReadDir, Cookie: 7, Count: 4096},
			{Code: nfs4.OpAccess, Access: 0x3f},
		}},
		&nfs4.CompoundRes{Status: nfs3.OK, Tag: "ok", Results: []nfs4.OpResult{
			{Code: nfs4.OpGetFH, Status: nfs3.OK, FH: nfs3.FH3{Data: []byte{9}}},
			{Code: nfs4.OpGetAttr, Status: nfs3.OK, HasAttr: true, Attr: nfs3.Fattr3{Type: 1, Mode: 0o644, Size: 4096}},
			{Code: nfs4.OpRead, Status: nfs3.OK, EOF: true, Data: []byte{1, 2}},
			{Code: nfs4.OpReadLink, Status: nfs3.OK, Target: "/x"},
			{Code: nfs4.OpReadDir, Status: nfs3.OK, EOF: true, Entries: []nfs3.DirEntryPlus{
				{FileID: 3, Name: "x", Cookie: 1},
			}},
		}},
		// A failed compound stops at the first non-OK result.
		&nfs4.CompoundRes{Status: nfs3.Status(vfs.ErrNoEnt), Tag: "", Results: []nfs4.OpResult{
			{Code: nfs4.OpLookup, Status: nfs3.Status(vfs.ErrNoEnt)},
		}},
		&nfs4.Op{Code: nfs4.OpSetAttr, Attr: nfs3.Sattr3{}},
		&nfs4.OpResult{Code: nfs4.OpWrite, Status: nfs3.OK, Count: 512},
	}
	kinds := nfs4Messages()
	for _, msg := range seed {
		data, err := xdr.Marshal(msg)
		if err != nil {
			f.Fatal(err)
		}
		for k, proto := range kinds {
			// Seed the matching kind with the valid encoding; feeding
			// kind 0 everything exercises cross-type error paths.
			if sameType(proto, msg) || k == 0 {
				f.Add(k, data)
			}
		}
	}
	f.Add(0, []byte{})
	f.Add(1, []byte{0, 0, 0, 0})
	// Length field claiming 2^32-1 ops: must be rejected, not allocated.
	f.Add(0, []byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, kind int, data []byte) {
		kinds := nfs4Messages()
		if kind < 0 || kind >= len(kinds) {
			return
		}
		msg := kinds[kind]
		if err := xdr.Unmarshal(data, msg); err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must re-encode to a canonical fixed point.
		first, err := xdr.Marshal(msg)
		if err != nil {
			t.Fatalf("re-encode of accepted %T failed: %v", msg, err)
		}
		fresh := nfs4Messages()[kind]
		if err := xdr.Unmarshal(first, fresh); err != nil {
			t.Fatalf("decode of canonical %T encoding failed: %v", msg, err)
		}
		second, err := xdr.Marshal(fresh)
		if err != nil {
			t.Fatalf("second re-encode of %T failed: %v", msg, err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("%T encoding is not a fixed point:\n first=%x\nsecond=%x", msg, first, second)
		}
	})
}

func sameType(a, b codec) bool {
	return reflect.TypeOf(a) == reflect.TypeOf(b)
}
