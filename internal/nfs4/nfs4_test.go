package nfs4

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"
	"testing/quick"

	"repro/internal/oncrpc"
	"repro/internal/vfs"
)

func startV4(t *testing.T) (*Client, *vfs.MemFS) {
	t.Helper()
	backend := vfs.NewMemFS()
	rpc := oncrpc.NewServer()
	NewServer(backend, 4).Register(rpc)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rpc.Serve(l)
	t.Cleanup(rpc.Close)
	c, err := Dial(func() (net.Conn, error) { return net.Dial("tcp", l.Addr().String()) }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, backend
}

func TestCompoundWalkInOneRoundTrip(t *testing.T) {
	c, backend := startV4(t)
	// Build /a/b/c/leaf directly on the backend.
	cur := backend.Root()
	for _, name := range []string{"a", "b", "c"} {
		h, _, err := backend.Mkdir(cur, name, vfs.SetAttr{})
		if err != nil {
			t.Fatal(err)
		}
		cur = h
	}
	h, _, _ := backend.Create(cur, "leaf", vfs.SetAttr{}, false)
	backend.Write(h, 0, []byte("deep"))

	attr, err := c.Stat(context.Background(), "a/b/c/leaf")
	if err != nil {
		t.Fatal(err)
	}
	if attr.Size != 4 {
		t.Fatalf("size %d", attr.Size)
	}
}

func TestOpenCreateWriteRead(t *testing.T) {
	c, _ := startV4(t)
	ctx := context.Background()
	f, err := c.OpenFile(ctx, "data.bin", true, true, false)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("4"), 100000)
	if _, err := f.WriteAt(ctx, payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(ctx); err != nil {
		t.Fatal(err)
	}
	g, err := c.OpenFile(ctx, "data.bin", false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := g.ReadAt(ctx, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
}

func TestExclusiveOpen(t *testing.T) {
	c, _ := startV4(t)
	ctx := context.Background()
	if _, err := c.OpenFile(ctx, "x", true, false, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenFile(ctx, "x", true, false, true); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("got %v", err)
	}
}

func TestMkdirRemoveRename(t *testing.T) {
	c, _ := startV4(t)
	ctx := context.Background()
	if err := c.Mkdir(ctx, "dir", 0755); err != nil {
		t.Fatal(err)
	}
	f, _ := c.OpenFile(ctx, "dir/f", true, false, false)
	f.WriteAt(ctx, []byte("v"), 0)
	f.Close(ctx)
	if err := c.Rename(ctx, "dir/f", "dir/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat(ctx, "dir/f"); !errors.Is(err, vfs.ErrNoEnt) {
		t.Fatalf("old name: %v", err)
	}
	if _, err := c.Stat(ctx, "dir/g"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(ctx, "dir/g"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(ctx, "dir"); err != nil {
		t.Fatal(err)
	}
}

func TestReadDir(t *testing.T) {
	c, _ := startV4(t)
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		f, err := c.OpenFile(ctx, "f"+string(rune('a'+i)), true, false, false)
		if err != nil {
			t.Fatal(err)
		}
		f.Close(ctx)
	}
	entries, err := c.ReadDir(ctx, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 30 {
		t.Fatalf("got %d entries", len(entries))
	}
}

func TestCompoundStopsAtFailure(t *testing.T) {
	c, _ := startV4(t)
	results, err := c.compound(context.Background(),
		Op{Code: OpPutRootFH},
		Op{Code: OpLookup, Name: "missing"},
		Op{Code: OpGetAttr})
	if err == nil {
		t.Fatal("compound with failing lookup succeeded")
	}
	if len(results) != 2 {
		t.Fatalf("executed %d ops, want stop after 2", len(results))
	}
	if results[1].Status != Status(vfs.ErrNoEnt) {
		t.Fatalf("lookup status %v", results[1].Status)
	}
}

func TestStatCaching(t *testing.T) {
	c, _ := startV4(t)
	ctx := context.Background()
	f, _ := c.OpenFile(ctx, "s", true, false, false)
	f.WriteAt(ctx, []byte("xyz"), 0)
	f.Close(ctx)
	a1, err := c.Stat(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := c.Stat(ctx, "s") // served from cache
	if a1 != a2 {
		t.Fatal("cached stat differs")
	}
}

func TestQuickV4WriteModel(t *testing.T) {
	c, _ := startV4(t)
	ctx := context.Background()
	count := 0
	f := func(seed int64) bool {
		count++
		rng := rand.New(rand.NewSource(seed))
		name := string(rune('A'+count%26)) + "model"
		file, err := c.OpenFile(ctx, name, true, true, false)
		if err != nil {
			return false
		}
		var model []byte
		for i := 0; i < 10; i++ {
			off := rng.Intn(100000)
			n := rng.Intn(40000) + 1
			data := make([]byte, n)
			rng.Read(data)
			if _, err := file.WriteAt(ctx, data, int64(off)); err != nil {
				return false
			}
			if off+n > len(model) {
				grown := make([]byte, off+n)
				copy(grown, model)
				model = grown
			}
			copy(model[off:], data)
		}
		if err := file.Close(ctx); err != nil {
			return false
		}
		g, err := c.OpenFile(ctx, name, false, false, false)
		if err != nil {
			return false
		}
		got := make([]byte, len(model))
		if _, err := g.ReadAt(ctx, got, 0); err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
